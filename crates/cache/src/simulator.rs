//! Reference set-associative LRU cache simulator.
//!
//! Plays the role of the paper's hardware performance counters: it measures
//! *actual* misses on the same event stream the analyzer sees, so
//! reuse-distance predictions can be validated end to end.

use crate::config::CacheConfig;
use reuselens_ir::{AccessKind, RefId, ScopeId};
use reuselens_trace::TraceSink;

/// Replacement policy for [`CacheSim`].
///
/// The paper's analysis assumes LRU; FIFO is provided as an ablation to
/// quantify how much the policy itself matters on a given trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Evict the least recently used block (the paper's assumption).
    #[default]
    Lru,
    /// Evict the oldest-inserted block regardless of use.
    Fifo,
}

/// Simulates one cache level with true LRU replacement and counts misses
/// per static reference.
///
/// # Examples
///
/// ```
/// use reuselens_cache::{Assoc, CacheConfig, CacheSim};
/// use reuselens_ir::{AccessKind, RefId};
/// use reuselens_trace::TraceSink;
///
/// let cfg = CacheConfig::new("tiny", 2 * 64, 64, Assoc::Full);
/// let mut sim = CacheSim::new(&cfg, 4);
/// for addr in [0u64, 64, 128, 0] {
///     sim.access(RefId(0), addr, 8, AccessKind::Load);
/// }
/// // 3 cold misses + 1 capacity miss (0 was evicted by 64,128 in a
/// // 2-line cache).
/// assert_eq!(sim.misses(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    name: String,
    line_shift: u32,
    sets: Vec<Vec<u64>>, // per-set stacks, most recent/newest first
    set_count: u64,
    ways: usize,
    accesses: u64,
    misses: u64,
    misses_per_ref: Vec<u64>,
    replacement: Replacement,
}

impl CacheSim {
    /// Creates an LRU simulator for the given configuration; `nrefs` sizes
    /// the per-reference miss table.
    pub fn new(config: &CacheConfig, nrefs: usize) -> CacheSim {
        CacheSim::with_replacement(config, nrefs, Replacement::Lru)
    }

    /// Creates a simulator with an explicit replacement policy.
    pub fn with_replacement(
        config: &CacheConfig,
        nrefs: usize,
        replacement: Replacement,
    ) -> CacheSim {
        CacheSim {
            name: config.name.clone(),
            line_shift: config.line_size.trailing_zeros(),
            sets: vec![Vec::new(); config.sets() as usize],
            set_count: config.sets(),
            ways: config.ways() as usize,
            accesses: 0,
            misses: 0,
            misses_per_ref: vec![0; nrefs],
            replacement,
        }
    }

    /// The simulated level's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses (cold + capacity + conflict).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Misses attributed to one static reference.
    pub fn misses_of(&self, r: RefId) -> u64 {
        self.misses_per_ref.get(r.index()).copied().unwrap_or(0)
    }

    /// Measured miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl TraceSink for CacheSim {
    fn access(&mut self, r: RefId, addr: u64, _size: u32, _kind: AccessKind) {
        self.accesses += 1;
        let block = addr >> self.line_shift;
        let set = &mut self.sets[(block % self.set_count) as usize];
        match set.iter().position(|&b| b == block) {
            Some(pos) => {
                if self.replacement == Replacement::Lru {
                    set.remove(pos);
                    set.insert(0, block);
                }
            }
            None => {
                self.misses += 1;
                if let Some(slot) = self.misses_per_ref.get_mut(r.index()) {
                    *slot += 1;
                }
                set.insert(0, block);
                set.truncate(self.ways);
            }
        }
    }

    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

/// Simulates every level of a hierarchy (caches + TLB) in one pass.
#[derive(Debug, Clone)]
pub struct HierarchySim {
    /// One simulator per cache level, nearest first.
    pub levels: Vec<CacheSim>,
    /// The TLB simulator.
    pub tlb: CacheSim,
}

impl HierarchySim {
    /// Creates simulators for all levels of `hierarchy`.
    pub fn new(hierarchy: &crate::config::MemoryHierarchy, nrefs: usize) -> HierarchySim {
        HierarchySim {
            levels: hierarchy
                .levels
                .iter()
                .map(|l| CacheSim::new(l, nrefs))
                .collect(),
            tlb: CacheSim::new(&hierarchy.tlb, nrefs),
        }
    }

    /// Misses at a named level (including `"TLB"`).
    pub fn misses_at(&self, name: &str) -> Option<u64> {
        if self.tlb.name() == name {
            return Some(self.tlb.misses());
        }
        self.levels
            .iter()
            .find(|s| s.name() == name)
            .map(CacheSim::misses)
    }
}

impl TraceSink for HierarchySim {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        for l in &mut self.levels {
            l.access(r, addr, size, kind);
        }
        self.tlb.access(r, addr, size, kind);
    }
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Assoc, MemoryHierarchy};
    use reuselens_prng::SplitMix64;
    use reuselens_core::oracle;

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets, 1 way, 64 B lines: blocks 0 and 2 conflict.
        let cfg = CacheConfig::new("dm", 2 * 64, 64, Assoc::Ways(1));
        let mut sim = CacheSim::new(&cfg, 1);
        for addr in [0u64, 128, 0, 128] {
            sim.access(RefId(0), addr, 8, AccessKind::Load);
        }
        assert_eq!(sim.misses(), 4); // every access conflicts
        assert_eq!(sim.misses_of(RefId(0)), 4);
        assert!((sim.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn associativity_removes_conflicts() {
        let cfg = CacheConfig::new("2w", 2 * 64, 64, Assoc::Ways(2));
        let mut sim = CacheSim::new(&cfg, 1);
        for addr in [0u64, 128, 0, 128] {
            sim.access(RefId(0), addr, 8, AccessKind::Load);
        }
        assert_eq!(sim.misses(), 2); // only cold
    }

    /// Seeded randomized differential test against the brute-force oracle.
    #[test]
    fn fully_associative_sim_matches_oracle() {
        let mut rng = SplitMix64::seed_from_u64(0x51_0acb);
        for _case in 0..64 {
            let addrs = rng.vec_u64(1..300, 0..8192);
            let cap_blocks = rng.gen_range(1..32);
            let cfg = CacheConfig::new("fa", cap_blocks * 64, 64, Assoc::Full);
            let mut sim = CacheSim::new(&cfg, 1);
            for &a in &addrs {
                sim.access(RefId(0), a, 8, AccessKind::Load);
            }
            let expected =
                oracle::fully_associative_misses(&addrs, 64, cap_blocks as usize);
            assert_eq!(sim.misses(), expected);
        }
    }

    #[test]
    fn fifo_keeps_insertion_order() {
        // 2-entry fully associative cache. Trace: A B A C A.
        // LRU: after "A B A", A is most-recent, C evicts B -> final A hits.
        // FIFO: after "A B A", A is *oldest*, C evicts A -> final A misses.
        let cfg = CacheConfig::new("c", 2 * 64, 64, Assoc::Full);
        let trace = [0u64, 64, 0, 128, 0];
        let mut lru = CacheSim::new(&cfg, 1);
        let mut fifo = CacheSim::with_replacement(&cfg, 1, Replacement::Fifo);
        for &a in &trace {
            lru.access(RefId(0), a, 8, AccessKind::Load);
            fifo.access(RefId(0), a, 8, AccessKind::Load);
        }
        assert_eq!(lru.misses(), 3);
        assert_eq!(fifo.misses(), 4);
    }

    #[test]
    fn hierarchy_sim_tracks_all_levels() {
        let h = MemoryHierarchy::itanium2_scaled(64);
        let mut sim = HierarchySim::new(&h, 2);
        for i in 0..10_000u64 {
            sim.access(RefId((i % 2) as u32), i * 64 % 65536, 8, AccessKind::Load);
        }
        assert!(sim.misses_at("L2").unwrap() >= sim.misses_at("L3").unwrap());
        assert!(sim.misses_at("TLB").is_some());
        assert!(sim.misses_at("L9").is_none());
    }
}
