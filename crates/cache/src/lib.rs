//! # reuselens-cache — memory-hierarchy models
//!
//! Turns the reuse-distance profiles measured by `reuselens-core` into
//! cache- and TLB-miss predictions for concrete memory hierarchies, and
//! models run time with an additive cycle model:
//!
//! * [`MemoryHierarchy::itanium2`] is the paper's evaluation platform
//!   (256 KB 8-way L2, 1.5 MB 6-way L3, 128-entry fully associative TLB);
//! * [`predict_level`] applies the fully associative threshold rule or the
//!   probabilistic binomial model for set-associative caches, *per reuse
//!   pattern*;
//! * [`CacheSim`] / [`HierarchySim`] are true LRU simulators used as the
//!   reproduction's stand-in for hardware counters;
//! * [`predict_cycles`] converts miss counts into the paper's
//!   time/non-stall breakdown;
//! * [`evaluate_program`] does all of the above in one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod error;
mod evaluate;
mod model;
mod simulator;
mod threec;
mod timing;

pub use config::{Assoc, CacheConfig, MemoryHierarchy};
pub use error::{ConfigError, ReuseLensError};
pub use evaluate::{
    evaluate_program, evaluate_program_sweep, evaluate_sweep, evaluate_sweep_degraded,
    report_from_analysis, try_report_from_analysis, HierarchyReport, SweepFailure, SweepOutcome,
    SweepTiming,
};
pub use model::{miss_curve, miss_probability, predict_level, LevelPrediction};
pub use simulator::{CacheSim, HierarchySim, Replacement};
pub use threec::{MissBreakdown, ThreeCSim};
pub use timing::{predict_cycles, TimingBreakdown};
