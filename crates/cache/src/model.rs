//! Cache-miss prediction from reuse-distance profiles.
//!
//! For a fully associative LRU cache, a reuse at distance `d` misses iff
//! `d >= blocks`. For set-associative caches we use the probabilistic model
//! of the authors' earlier work: the `d` intervening blocks fall into the
//! reused block's set like `Binomial(d, 1/sets)` trials, and the reuse
//! misses when at least `ways` of them land there.

use crate::config::{Assoc, CacheConfig};
use reuselens_core::{PatternKey, ReuseProfile};

/// Probability that a reuse with distance `distance` (distinct blocks)
/// misses in the given cache.
///
/// # Examples
///
/// ```
/// use reuselens_cache::{miss_probability, Assoc, CacheConfig};
///
/// let fa = CacheConfig::new("fa", 64 * 128, 128, Assoc::Full);
/// assert_eq!(miss_probability(&fa, 63), 0.0);
/// assert_eq!(miss_probability(&fa, 64), 1.0);
///
/// let sa = CacheConfig::new("sa", 64 * 128, 128, Assoc::Ways(4));
/// // Short reuses almost surely hit; far ones almost surely miss.
/// assert!(miss_probability(&sa, 4) < 0.01);
/// assert!(miss_probability(&sa, 4096) > 0.99);
/// ```
pub fn miss_probability(config: &CacheConfig, distance: u64) -> f64 {
    let blocks = config.blocks();
    match config.assoc {
        Assoc::Full => {
            if distance >= blocks {
                1.0
            } else {
                0.0
            }
        }
        Assoc::Ways(ways) => {
            let sets = config.sets();
            if sets == 1 {
                return if distance >= ways as u64 { 1.0 } else { 0.0 };
            }
            binomial_tail(distance, 1.0 / sets as f64, ways as u64)
        }
    }
}

/// `P[Binomial(n, p) >= k]`, computed with a numerically stable incremental
/// sum of the complementary CDF. Exact enough for `k` up to a few dozen
/// ways; when `(1-p)^n` underflows the mean `n·p` is astronomically larger
/// than any way count and the tail is 1.
fn binomial_tail(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if n < k {
        return 0.0;
    }
    let q = 1.0 - p;
    // term_0 = q^n via exp/ln for large n
    let log_term0 = n as f64 * q.ln();
    if log_term0 < -700.0 {
        return 1.0; // q^n underflows => mean np >> k
    }
    let mut term = log_term0.exp();
    let mut cdf = term;
    let ratio = p / q;
    for j in 0..(k - 1) {
        term *= (n - j) as f64 / (j + 1) as f64 * ratio;
        cdf += term;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Computes the classic Mattson miss-count curve from a reuse profile:
/// for each fully associative LRU capacity (in blocks), the number of
/// misses the run would take. A single profile yields the curve for
/// *every* cache size at once — the core economy of stack-distance
/// analysis.
///
/// The returned counts include compulsory (cold) misses and are
/// non-increasing in capacity.
///
/// # Examples
///
/// ```
/// use reuselens_cache::miss_curve;
/// use reuselens_core::analyze_program;
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[1024]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 3, |r, _| {
///         r.for_("i", 0, 1023, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let analysis = analyze_program(&prog, &[64], vec![])?;
/// let curve = miss_curve(analysis.profile_at(64).unwrap(), &[16, 128, 1024]);
/// // Small cache: every resweep misses; big cache: only cold misses.
/// assert!(curve[0].1 > curve[2].1);
/// assert_eq!(curve[2].1, 128.0); // 1024*8/64 cold lines
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn miss_curve(profile: &ReuseProfile, capacities_blocks: &[u64]) -> Vec<(u64, f64)> {
    capacities_blocks
        .iter()
        .map(|&cap| {
            let mut misses = profile.total_cold() as f64;
            for p in &profile.patterns {
                misses += p.histogram.count_ge(cap);
            }
            (cap, misses)
        })
        .collect()
}

/// Predicted misses at one cache level, per reuse pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelPrediction {
    /// The level's name (`"L2"`, `"TLB"`, ...).
    pub level: String,
    /// Compulsory misses (first touches) — always miss.
    pub cold: u64,
    /// Expected misses per reuse pattern (cold not included).
    pub per_pattern: Vec<(PatternKey, f64)>,
    /// Total expected misses including cold.
    pub total: f64,
    /// Total accesses the profile observed.
    pub accesses: u64,
}

impl LevelPrediction {
    /// Miss rate = total predicted misses / accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total / self.accesses as f64
        }
    }

    /// Expected misses of patterns carried by the given scope.
    pub fn misses_carried_by(&self, scope: reuselens_ir::ScopeId) -> f64 {
        self.per_pattern
            .iter()
            .filter(|(k, _)| k.carrier == scope)
            .map(|(_, m)| m)
            .sum()
    }

    /// Expected misses of patterns whose sink is the given reference.
    pub fn misses_for_sink(&self, sink: reuselens_ir::RefId) -> f64 {
        self.per_pattern
            .iter()
            .filter(|(k, _)| k.sink == sink)
            .map(|(_, m)| m)
            .sum()
    }
}

/// Predicts misses at one cache level from a reuse profile measured at the
/// level's line size.
///
/// # Panics
///
/// Panics if the profile's block size differs from the level's line size —
/// distances at the wrong granularity are meaningless.
pub fn predict_level(profile: &ReuseProfile, config: &CacheConfig) -> LevelPrediction {
    assert_eq!(
        profile.block_size, config.line_size,
        "profile granularity {} does not match {} line size {}",
        profile.block_size, config.name, config.line_size
    );
    let mut per_pattern = Vec::with_capacity(profile.patterns.len());
    let mut total = profile.total_cold() as f64;
    for p in &profile.patterns {
        let misses = match config.assoc {
            Assoc::Full => p.histogram.count_ge(config.blocks()),
            _ => p
                .histogram
                .expected_misses(|d| miss_probability(config, d)),
        };
        total += misses;
        per_pattern.push((p.key, misses));
    }
    LevelPrediction {
        level: config.name.clone(),
        cold: profile.total_cold(),
        per_pattern,
        total,
        accesses: profile.total_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;
    use reuselens_core::{Histogram, ReusePattern};
    use reuselens_ir::{RefId, ScopeId};

    #[test]
    fn binomial_tail_edge_cases() {
        assert_eq!(binomial_tail(10, 0.5, 0), 1.0);
        assert_eq!(binomial_tail(3, 0.5, 4), 0.0);
        // P[Bin(1, 0.25) >= 1] = 0.25
        assert!((binomial_tail(1, 0.25, 1) - 0.25).abs() < 1e-12);
        // P[Bin(2, 0.5) >= 2] = 0.25
        assert!((binomial_tail(2, 0.5, 2) - 0.25).abs() < 1e-12);
        // Huge n: tail is 1
        assert_eq!(binomial_tail(10_000_000, 1.0 / 256.0, 8), 1.0);
    }

    /// Seeded randomized check: the miss curve is monotone nonincreasing
    /// in capacity, with exact endpoints.
    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut rng = SplitMix64::seed_from_u64(0xc0_4e5);
        for _case in 0..128 {
            let ds = rng.vec_u64(0..200, 0..100_000);
            let cold = rng.gen_range(0..50);
            let h: Histogram = ds.iter().copied().collect();
            let profile = ReuseProfile {
                block_size: 64,
                patterns: vec![ReusePattern {
                    key: PatternKey {
                        sink: RefId(0),
                        source_scope: ScopeId(0),
                        carrier: ScopeId(0),
                    },
                    histogram: h,
                }],
                cold: vec![cold],
                total_accesses: ds.len() as u64 + cold,
                distinct_blocks: cold,
                sampling: None,
            };
            let caps: Vec<u64> = vec![1, 4, 16, 64, 256, 1024, 1 << 20];
            let curve = miss_curve(&profile, &caps);
            for w in curve.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9);
            }
            // An effectively infinite cache leaves only cold misses.
            assert!((curve.last().unwrap().1 - cold as f64).abs() < 1e-9);
            // A 1-block cache misses every non-zero-distance reuse.
            let zero_dist = ds.iter().filter(|&&d| d == 0).count() as f64;
            assert!(
                (curve[0].1 - (cold as f64 + ds.len() as f64 - zero_dist)).abs() < 1e-9
            );
        }
    }
}
