//! The workspace error taxonomy.
//!
//! Lower layers define their own precise errors — [`ExecError`] for
//! execution, [`DecodeError`] for trace validation, [`BudgetExceeded`] for
//! resource caps, [`AnalysisError`] for the replay engine — and this
//! module adds the cache layer's [`ConfigError`] plus the umbrella
//! [`ReuseLensError`] that every end-to-end pipeline
//! ([`evaluate_sweep`](crate::evaluate_sweep),
//! [`evaluate_program_sweep`](crate::evaluate_program_sweep)) returns.
//! `From` impls convert each lower error losslessly, so `?` composes the
//! whole stack.

use reuselens_core::{AnalysisError, BudgetExceeded, SnapshotError};
use reuselens_trace::{DecodeError, ExecError};
use std::error::Error;
use std::fmt;

/// An invalid cache, TLB, or hierarchy description.
///
/// Returned by [`CacheConfig::try_new`](crate::CacheConfig::try_new),
/// [`CacheConfig::try_tlb`](crate::CacheConfig::try_tlb), and
/// [`MemoryHierarchy::validate`](crate::MemoryHierarchy::validate). The
/// panicking constructors delegate to the fallible ones and panic with the
/// same message this error displays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The line (or page) size is not a power of two.
    LineSizeNotPowerOfTwo {
        /// The offending line size.
        line_size: u64,
    },
    /// The capacity is zero or not a multiple of the line size.
    CapacityNotMultiple {
        /// The offending capacity.
        capacity: u64,
        /// The line size it must be a positive multiple of.
        line_size: u64,
    },
    /// The way count is zero or does not divide the block count.
    WaysDontDivideBlocks {
        /// The offending way count.
        ways: u32,
        /// Total blocks (capacity / line size).
        blocks: u64,
    },
    /// A TLB description whose `entries * page_size` overflows `u64`.
    TlbOverflow {
        /// Requested entry count.
        entries: u64,
        /// Requested page size.
        page_size: u64,
    },
    /// A hierarchy with no cache levels.
    NoLevels {
        /// Name of the offending hierarchy.
        hierarchy: String,
    },
    /// Two levels (or a level and the TLB) share a name, which would make
    /// per-level reports ambiguous.
    DuplicateLevel {
        /// Name of the offending hierarchy.
        hierarchy: String,
        /// The repeated level name.
        name: String,
    },
    /// The miss-penalty vector length does not match the level count.
    PenaltyMismatch {
        /// Name of the offending hierarchy.
        hierarchy: String,
        /// Number of cache levels.
        levels: usize,
        /// Number of per-level miss penalties supplied.
        penalties: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LineSizeNotPowerOfTwo { line_size } => {
                write!(f, "line size must be power of two (got {line_size})")
            }
            ConfigError::CapacityNotMultiple {
                capacity,
                line_size,
            } => write!(
                f,
                "capacity must be a positive multiple of the line size \
                 (capacity {capacity}, line size {line_size})"
            ),
            ConfigError::WaysDontDivideBlocks { ways, blocks } => {
                write!(f, "ways must divide blocks ({ways} ways, {blocks} blocks)")
            }
            ConfigError::TlbOverflow { entries, page_size } => write!(
                f,
                "TLB capacity overflows: {entries} entries of {page_size}-byte pages"
            ),
            ConfigError::NoLevels { hierarchy } => {
                write!(f, "hierarchy {hierarchy:?} has no cache levels")
            }
            ConfigError::DuplicateLevel { hierarchy, name } => {
                write!(f, "hierarchy {hierarchy:?} has two levels named {name:?}")
            }
            ConfigError::PenaltyMismatch {
                hierarchy,
                levels,
                penalties,
            } => write!(
                f,
                "hierarchy {hierarchy:?} has {levels} levels but {penalties} miss penalties"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Any failure an end-to-end ReuseLens pipeline can report: execution,
/// trace decoding, configuration, resource budgets, or an isolated panic
/// in a worker thread. Re-exported at the workspace root as
/// `reuselens::ReuseLensError`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReuseLensError {
    /// Program execution failed in the trace executor.
    Exec(ExecError),
    /// The validating decoder rejected a trace buffer.
    Decode(DecodeError),
    /// A cache, TLB, or hierarchy description is invalid.
    Config(ConfigError),
    /// An analysis crossed its resource budget.
    Budget(BudgetExceeded),
    /// A grain's replay thread panicked (after the retry pass).
    GrainFailed {
        /// Block size of the failed grain.
        block_size: u64,
        /// Panic message, or `"unknown panic payload"`.
        message: String,
    },
    /// A sweep's scoring thread panicked.
    SweepPanicked {
        /// Name of the hierarchy whose thread died.
        hierarchy: String,
        /// Panic message, or `"unknown panic payload"`.
        message: String,
    },
    /// A hierarchy requires a granularity the analysis did not measure.
    MissingProfile {
        /// Name of the hierarchy that needs the profile.
        hierarchy: String,
        /// The block size (line or page size) that was not measured.
        granularity: u64,
    },
    /// The checkpoint/resume subsystem failed (unwritable checkpoint
    /// directory, failed snapshot write). Rejected snapshot *files* never
    /// surface here — resume falls back past them.
    Snapshot(SnapshotError),
}

impl fmt::Display for ReuseLensError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseLensError::Exec(e) => e.fmt(f),
            ReuseLensError::Decode(e) => write!(f, "trace decode failed: {e}"),
            ReuseLensError::Config(e) => e.fmt(f),
            ReuseLensError::Budget(e) => e.fmt(f),
            ReuseLensError::GrainFailed {
                block_size,
                message,
            } => write!(f, "replay thread for grain {block_size} panicked: {message}"),
            ReuseLensError::SweepPanicked { hierarchy, message } => write!(
                f,
                "scoring thread for hierarchy {hierarchy:?} panicked: {message}"
            ),
            ReuseLensError::MissingProfile {
                hierarchy,
                granularity,
            } => write!(
                f,
                "no profile at granularity {granularity} (required by hierarchy {hierarchy:?})"
            ),
            ReuseLensError::Snapshot(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl Error for ReuseLensError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReuseLensError::Exec(e) => Some(e),
            ReuseLensError::Decode(e) => Some(e),
            ReuseLensError::Config(e) => Some(e),
            ReuseLensError::Budget(e) => Some(e),
            ReuseLensError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ReuseLensError {
    fn from(e: SnapshotError) -> ReuseLensError {
        ReuseLensError::Snapshot(e)
    }
}

impl From<ExecError> for ReuseLensError {
    fn from(e: ExecError) -> ReuseLensError {
        ReuseLensError::Exec(e)
    }
}

impl From<DecodeError> for ReuseLensError {
    fn from(e: DecodeError) -> ReuseLensError {
        ReuseLensError::Decode(e)
    }
}

impl From<ConfigError> for ReuseLensError {
    fn from(e: ConfigError) -> ReuseLensError {
        ReuseLensError::Config(e)
    }
}

impl From<BudgetExceeded> for ReuseLensError {
    fn from(e: BudgetExceeded) -> ReuseLensError {
        ReuseLensError::Budget(e)
    }
}

impl From<AnalysisError> for ReuseLensError {
    fn from(e: AnalysisError) -> ReuseLensError {
        match e {
            AnalysisError::Exec(e) => ReuseLensError::Exec(e),
            AnalysisError::Decode(e) => ReuseLensError::Decode(e),
            AnalysisError::Budget(e) => ReuseLensError::Budget(e),
            AnalysisError::GrainPanicked {
                block_size,
                message,
            } => ReuseLensError::GrainFailed {
                block_size,
                message,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_panic_phrases() {
        // The panicking constructors fail with these exact phrases; the
        // fallible paths must keep displaying them.
        let e = ConfigError::LineSizeNotPowerOfTwo { line_size: 48 };
        assert!(e.to_string().contains("line size must be power of two"));
        let e = ConfigError::CapacityNotMultiple {
            capacity: 100,
            line_size: 64,
        };
        assert!(e
            .to_string()
            .contains("capacity must be a positive multiple of the line size"));
        let e = ConfigError::WaysDontDivideBlocks { ways: 3, blocks: 8 };
        assert!(e.to_string().contains("ways must divide blocks"));
        let e = ReuseLensError::MissingProfile {
            hierarchy: "h".into(),
            granularity: 128,
        };
        assert!(e.to_string().contains("no profile at granularity"));
    }

    #[test]
    fn analysis_error_flattens_into_the_umbrella() {
        let e: ReuseLensError = AnalysisError::GrainPanicked {
            block_size: 64,
            message: "boom".into(),
        }
        .into();
        assert_eq!(
            e,
            ReuseLensError::GrainFailed {
                block_size: 64,
                message: "boom".into()
            }
        );
        let src = ReuseLensError::Config(ConfigError::NoLevels {
            hierarchy: "x".into(),
        });
        assert!(src.source().is_some());
    }
}
