//! Simple additive cycle model.
//!
//! The paper reports execution time and "non-stall time"; the reproduction
//! models time as a base cost per access plus a fixed penalty per miss at
//! each level. Absolute cycles will not match real Itanium2 hardware — the
//! *ratios* between code variants are what the figures compare.

use crate::config::MemoryHierarchy;

/// Predicted cycle breakdown for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBreakdown {
    /// Cycles spent if every access hit (the paper's "non-stall time").
    pub non_stall: f64,
    /// Added stall cycles from cache misses, per level (nearest first).
    pub level_stall: [f64; 4],
    /// Number of cache levels actually used in `level_stall`.
    pub level_count: usize,
    /// Added stall cycles from TLB misses.
    pub tlb_stall: f64,
}

impl TimingBreakdown {
    /// Total predicted cycles.
    pub fn total(&self) -> f64 {
        self.non_stall
            + self.level_stall[..self.level_count].iter().sum::<f64>()
            + self.tlb_stall
    }

    /// Fraction of cycles spent stalled.
    pub fn stall_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (t - self.non_stall) / t
        }
    }
}

/// Computes the cycle breakdown for a run with the given per-level miss
/// counts (same order as `hierarchy.levels`) and TLB misses.
///
/// # Panics
///
/// Panics if `level_misses` does not have one entry per hierarchy level or
/// the hierarchy has more than 4 levels.
pub fn predict_cycles(
    hierarchy: &MemoryHierarchy,
    accesses: u64,
    level_misses: &[f64],
    tlb_misses: f64,
) -> TimingBreakdown {
    assert_eq!(
        level_misses.len(),
        hierarchy.levels.len(),
        "one miss count per level required"
    );
    assert!(hierarchy.levels.len() <= 4, "at most 4 levels supported");
    let mut level_stall = [0.0; 4];
    for (i, (&m, &p)) in level_misses
        .iter()
        .zip(&hierarchy.miss_penalty)
        .enumerate()
    {
        level_stall[i] = m * p;
    }
    TimingBreakdown {
        non_stall: accesses as f64 * hierarchy.base_cpa,
        level_stall,
        level_count: hierarchy.levels.len(),
        tlb_stall: tlb_misses * hierarchy.tlb_penalty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_add_up() {
        let h = MemoryHierarchy::itanium2();
        let t = predict_cycles(&h, 1000, &[10.0, 5.0], 2.0);
        assert!((t.non_stall - 1000.0).abs() < 1e-9);
        assert!((t.level_stall[0] - 60.0).abs() < 1e-9);
        assert!((t.level_stall[1] - 550.0).abs() < 1e-9);
        assert!((t.tlb_stall - 60.0).abs() < 1e-9);
        assert!((t.total() - 1670.0).abs() < 1e-9);
        assert!(t.stall_fraction() > 0.0 && t.stall_fraction() < 1.0);
    }

    #[test]
    fn no_misses_means_no_stall() {
        let h = MemoryHierarchy::itanium2();
        let t = predict_cycles(&h, 500, &[0.0, 0.0], 0.0);
        assert_eq!(t.total(), t.non_stall);
        assert_eq!(t.stall_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one miss count per level")]
    fn wrong_level_count_panics() {
        let h = MemoryHierarchy::itanium2();
        let _ = predict_cycles(&h, 1, &[0.0], 0.0);
    }
}
