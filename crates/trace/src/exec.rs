//! The trace executor: interprets a [`Program`] and emits instrumentation
//! events.

use crate::event::TraceSink;
use reuselens_ir::{
    ArrayId, ArrayKind, EvalCtx, Expr, Program, RefId, RoutineId, ScopeId, Stmt, VarId,
};
use std::error::Error;
use std::fmt;

/// Maximum dynamic call depth; exceeded depth indicates runaway recursion
/// in a workload model.
const MAX_CALL_DEPTH: usize = 64;

/// Error produced while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A reference computed subscripts outside its array's extents.
    OutOfBounds {
        /// The offending reference.
        r: RefId,
        /// The evaluated subscripts.
        indices: Vec<i64>,
        /// The array's name.
        array: String,
    },
    /// An indirect load read from an index array whose contents were never
    /// provided via [`Executor::set_index_array`].
    MissingIndexData(ArrayId),
    /// An indirect load's subscripts fell outside the index array.
    IndexOutOfBounds(ArrayId, Vec<i64>),
    /// Dynamic call nesting exceeded the executor's depth limit (64).
    CallDepthExceeded(RoutineId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { r, indices, array } => {
                write!(f, "{r} accessed {array}{indices:?} out of bounds")
            }
            ExecError::MissingIndexData(a) => {
                write!(f, "index array {a} has no contents; call set_index_array")
            }
            ExecError::IndexOutOfBounds(a, idx) => {
                write!(f, "indirect load from {a}{idx:?} out of bounds")
            }
            ExecError::CallDepthExceeded(r) => {
                write!(f, "call depth exceeded while calling {r}")
            }
        }
    }
}

impl Error for ExecError {}

/// Dynamic per-loop statistics gathered during execution. The paper's
/// static analysis consumes the *average iteration count* of each loop
/// (its step 2 compares reuse-group spans against it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// How many times the loop was entered.
    pub entries: u64,
    /// Total iterations summed over all entries.
    pub iterations: u64,
}

impl LoopStats {
    /// Average iterations per entry (zero when never entered).
    pub fn average_trip(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.iterations as f64 / self.entries as f64
        }
    }
}

/// Summary returned by [`Executor::run`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Total memory accesses (loads + stores).
    pub accesses: u64,
    /// Loads only.
    pub loads: u64,
    /// Stores only.
    pub stores: u64,
    /// Per-scope loop statistics, indexed by [`ScopeId`]; non-loop scopes
    /// keep entry counts with zero iterations.
    pub loop_stats: Vec<LoopStats>,
}

impl ExecReport {
    /// Stats for one scope.
    pub fn scope_stats(&self, s: ScopeId) -> LoopStats {
        self.loop_stats.get(s.index()).copied().unwrap_or_default()
    }

    /// Average trip count of a loop scope.
    pub fn average_trip(&self, s: ScopeId) -> f64 {
        self.scope_stats(s).average_trip()
    }
}

/// Interprets a [`Program`], emitting one event per memory access and per
/// scope transition into a [`TraceSink`].
///
/// The executor tracks only *integer* state: scalar variables and the
/// contents of index arrays (for indirect addressing). Data arrays exist
/// purely as address ranges.
///
/// # Examples
///
/// ```
/// use reuselens_ir::ProgramBuilder;
/// use reuselens_trace::{Executor, VecSink};
///
/// let mut p = ProgramBuilder::new("stream");
/// let a = p.array("a", 8, &[4]);
/// p.routine("main", |r| {
///     r.for_("i", 0, 3, |r, i| {
///         r.load(a, vec![i.into()]);
///     });
/// });
/// let prog = p.finish();
/// let mut sink = VecSink::new();
/// let report = Executor::new(&prog).run(&mut sink)?;
/// assert_eq!(report.accesses, 4);
/// let base = prog.arrays()[0].base();
/// assert_eq!(sink.addresses(), vec![base, base + 8, base + 16, base + 24]);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    vars: Vec<i64>,
    index_data: Vec<Option<Vec<i64>>>,
}

struct Ctx<'a> {
    vars: &'a [i64],
    index_data: &'a [Option<Vec<i64>>],
    program: &'a Program,
    /// Records the first indirect-load fault; expression evaluation itself
    /// is infallible so faults are latched and surfaced after the access.
    fault: std::cell::RefCell<Option<ExecError>>,
}

impl EvalCtx for Ctx<'_> {
    fn var(&self, v: VarId) -> i64 {
        self.vars[v.index()]
    }

    fn load_index(&self, array: ArrayId, indices: &[i64]) -> i64 {
        let decl = self.program.array(array);
        let Some(data) = &self.index_data[array.index()] else {
            self.latch(ExecError::MissingIndexData(array));
            return 0;
        };
        match decl.flat_index(indices) {
            Some(flat) => data[flat as usize],
            None => {
                self.latch(ExecError::IndexOutOfBounds(array, indices.to_vec()));
                0
            }
        }
    }
}

impl<'p> Executor<'p> {
    /// Creates an executor for a program. Index arrays default to all-zero
    /// contents only after [`set_index_array`](Self::set_index_array) or
    /// [`fill_index_array`](Self::fill_index_array); reading an unset index
    /// array is an error, which catches forgotten workload initialization.
    pub fn new(program: &'p Program) -> Executor<'p> {
        Executor {
            program,
            vars: vec![0; program.var_count()],
            index_data: vec![None; program.arrays().len()],
        }
    }

    /// Provides the contents of an index array (flat, layout order).
    ///
    /// # Panics
    ///
    /// Panics if `array` is not an [`ArrayKind::Index`] array or `data` has
    /// the wrong length.
    pub fn set_index_array(&mut self, array: ArrayId, data: Vec<i64>) -> &mut Self {
        let decl = self.program.array(array);
        assert_eq!(
            decl.kind(),
            ArrayKind::Index,
            "{} is not an index array",
            decl.name()
        );
        assert_eq!(
            data.len() as u64,
            decl.len(),
            "index data length mismatch for {}",
            decl.name()
        );
        self.index_data[array.index()] = Some(data);
        self
    }

    /// Fills an index array by evaluating `f(flat_offset)`.
    pub fn fill_index_array(
        &mut self,
        array: ArrayId,
        f: impl FnMut(u64) -> i64,
    ) -> &mut Self {
        let len = self.program.array(array).len();
        let mut f = f;
        self.set_index_array(array, (0..len).map(&mut f).collect())
    }

    /// Runs the program's entry routine to completion.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecError`] encountered (out-of-bounds access,
    /// missing index data, runaway recursion).
    pub fn run<S: TraceSink>(&mut self, sink: &mut S) -> Result<ExecReport, ExecError> {
        let mut report = ExecReport {
            loop_stats: vec![LoopStats::default(); self.program.scopes().len()],
            ..ExecReport::default()
        };
        let entry = self.program.entry();
        self.run_routine(entry, sink, &mut report, 0)?;
        Ok(report)
    }

    fn run_routine<S: TraceSink>(
        &mut self,
        id: RoutineId,
        sink: &mut S,
        report: &mut ExecReport,
        depth: usize,
    ) -> Result<(), ExecError> {
        if depth >= MAX_CALL_DEPTH {
            return Err(ExecError::CallDepthExceeded(id));
        }
        let rtn = self.program.routine(id);
        let scope = rtn.scope();
        sink.enter(scope);
        report.loop_stats[scope.index()].entries += 1;
        // Clone is cheap: bodies are shared trees behind the program, but
        // borrowck needs the statement list split from `self`.
        let body: &[Stmt] = rtn.body();
        let result = self.run_body(body, sink, report, depth);
        sink.exit(scope);
        result
    }

    fn run_body<S: TraceSink>(
        &mut self,
        body: &[Stmt],
        sink: &mut S,
        report: &mut ExecReport,
        depth: usize,
    ) -> Result<(), ExecError> {
        for stmt in body {
            match stmt {
                Stmt::Access(rid) => self.run_access(*rid, sink, report)?,
                Stmt::Assign { var, value } => {
                    let v = self.eval(value)?;
                    self.vars[var.index()] = v;
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let taken = {
                        let ctx = self.ctx();
                        let t = cond.eval(&ctx);
                        ctx.take_fault()?;
                        t
                    };
                    if taken {
                        self.run_body(then_body, sink, report, depth)?;
                    } else {
                        self.run_body(else_body, sink, report, depth)?;
                    }
                }
                Stmt::Call(target) => {
                    self.run_routine(*target, sink, report, depth + 1)?;
                }
                Stmt::Loop(l) => {
                    let lower = self.eval(l.lower())?;
                    let upper = self.eval(l.upper())?;
                    let step = l.step();
                    let scope = l.scope();
                    sink.enter(scope);
                    report.loop_stats[scope.index()].entries += 1;
                    let mut v = lower;
                    while (step > 0 && v <= upper) || (step < 0 && v >= upper) {
                        self.vars[l.var().index()] = v;
                        report.loop_stats[scope.index()].iterations += 1;
                        self.run_body(l.body(), sink, report, depth)?;
                        v += step;
                    }
                    sink.exit(scope);
                }
            }
        }
        Ok(())
    }

    fn run_access<S: TraceSink>(
        &mut self,
        rid: RefId,
        sink: &mut S,
        report: &mut ExecReport,
    ) -> Result<(), ExecError> {
        let r = self.program.reference(rid);
        let decl = self.program.array(r.array());
        let mut indices = Vec::with_capacity(r.indices().len());
        {
            let ctx = self.ctx();
            for e in r.indices() {
                indices.push(e.eval(&ctx));
            }
            ctx.take_fault()?;
        }
        let Some(addr) = decl.address(&indices) else {
            return Err(ExecError::OutOfBounds {
                r: rid,
                indices,
                array: decl.name().to_string(),
            });
        };
        report.accesses += 1;
        match r.kind() {
            reuselens_ir::AccessKind::Load => report.loads += 1,
            reuselens_ir::AccessKind::Store => report.stores += 1,
        }
        sink.access(rid, addr, decl.elem_size(), r.kind());
        Ok(())
    }

    fn eval(&self, e: &Expr) -> Result<i64, ExecError> {
        let ctx = self.ctx();
        let v = e.eval(&ctx);
        ctx.take_fault()?;
        Ok(v)
    }

    fn ctx(&self) -> Ctx<'_> {
        Ctx {
            vars: &self.vars,
            index_data: &self.index_data,
            program: self.program,
            fault: std::cell::RefCell::new(None),
        }
    }
}

impl Ctx<'_> {
    fn latch(&self, e: ExecError) {
        let mut slot = self.fault.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn take_fault(&self) -> Result<(), ExecError> {
        match self.fault.borrow_mut().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, VecSink};
    use reuselens_ir::{Pred, ProgramBuilder};

    #[test]
    fn column_major_inner_loop_is_contiguous() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4, 2]);
        p.routine("main", |r| {
            r.for_("j", 0, 1, |r, j| {
                r.for_("i", 0, 3, |r, i| {
                    r.load(a, vec![i.into(), j.into()]);
                });
            });
        });
        let prog = p.finish();
        let mut sink = VecSink::new();
        let report = Executor::new(&prog).run(&mut sink).unwrap();
        assert_eq!(report.accesses, 8);
        let base = prog.arrays()[0].base();
        let expected: Vec<u64> = (0..8).map(|k| base + k * 8).collect();
        assert_eq!(sink.addresses(), expected);
    }

    #[test]
    fn negative_step_iterates_downward() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.for_step("i", 3, 0, -1, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let mut sink = VecSink::new();
        Executor::new(&prog).run(&mut sink).unwrap();
        let base = prog.arrays()[0].base();
        assert_eq!(
            sink.addresses(),
            vec![base + 24, base + 16, base + 8, base]
        );
    }

    #[test]
    fn scope_events_nest_and_loops_reenter() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.for_("o", 0, 1, |r, _| {
                r.for_("i", 0, 1, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let mut sink = VecSink::new();
        let report = Executor::new(&prog).run(&mut sink).unwrap();
        let inner = prog.scope_by_name("i").unwrap();
        let enters = sink
            .events
            .iter()
            .filter(|e| matches!(e, Event::Enter(s) if *s == inner))
            .count();
        // Inner loop is entered once per outer iteration.
        assert_eq!(enters, 2);
        assert_eq!(report.scope_stats(inner).entries, 2);
        assert_eq!(report.scope_stats(inner).iterations, 4);
        assert_eq!(report.average_trip(inner), 2.0);
        // Events balance.
        let mut depth = 0i64;
        for e in &sink.events {
            match e {
                Event::Enter(_) => depth += 1,
                Event::Exit(_) => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn guards_skip_out_of_range_work() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[10]);
        p.routine("main", |r| {
            r.for_("i", 0, 9, |r, i| {
                r.if_(Pred::Lt(Expr::var(i), Expr::c(3)), |r| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let mut sink = VecSink::new();
        let report = Executor::new(&prog).run(&mut sink).unwrap();
        assert_eq!(report.accesses, 3);
    }

    #[test]
    fn assigned_scalars_feed_subscripts() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[16]);
        p.routine("main", |r| {
            r.for_("d", 0, 3, |r, d| {
                let jj = r.let_("jj", Expr::var(d) * 2 + 1);
                r.load(a, vec![jj.into()]);
            });
        });
        let prog = p.finish();
        let mut sink = VecSink::new();
        Executor::new(&prog).run(&mut sink).unwrap();
        let base = prog.arrays()[0].base();
        assert_eq!(
            sink.addresses(),
            vec![base + 8, base + 24, base + 40, base + 56]
        );
    }

    #[test]
    fn indirect_loads_read_index_data() {
        let mut p = ProgramBuilder::new("t");
        let ix = p.index_array("ix", &[4]);
        let a = p.array("a", 8, &[100]);
        p.routine("main", |r| {
            r.for_("i", 0, 3, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        let mut exec = Executor::new(&prog);
        exec.set_index_array(ix, vec![7, 3, 99, 0]);
        let mut sink = VecSink::new();
        exec.run(&mut sink).unwrap();
        let base = prog.array(a).base();
        assert_eq!(
            sink.addresses(),
            vec![base + 7 * 8, base + 3 * 8, base + 99 * 8, base]
        );
    }

    #[test]
    fn missing_index_data_errors() {
        let mut p = ProgramBuilder::new("t");
        let ix = p.index_array("ix", &[4]);
        let a = p.array("a", 8, &[100]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::load(ix, vec![Expr::c(0)])]);
        });
        let prog = p.finish();
        let err = Executor::new(&prog).run(&mut VecSink::new()).unwrap_err();
        assert!(matches!(err, ExecError::MissingIndexData(_)));
    }

    #[test]
    fn out_of_bounds_is_reported_with_indices() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::c(4)]);
        });
        let prog = p.finish();
        let err = Executor::new(&prog).run(&mut VecSink::new()).unwrap_err();
        match err {
            ExecError::OutOfBounds { indices, array, .. } => {
                assert_eq!(indices, vec![4]);
                assert_eq!(array, "a");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn calls_enter_callee_scope() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        let callee = p.declare_routine("callee");
        let main = p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.call(callee);
            });
        });
        p.define_routine(callee, |r| {
            r.load(a, vec![Expr::c(0)]);
        });
        p.set_entry(main);
        let prog = p.finish();
        let mut sink = VecSink::new();
        Executor::new(&prog).run(&mut sink).unwrap();
        let callee_scope = prog.routine(callee).scope();
        let enters = sink
            .events
            .iter()
            .filter(|e| matches!(e, Event::Enter(s) if *s == callee_scope))
            .count();
        assert_eq!(enters, 2);
    }

    #[test]
    fn runaway_recursion_is_caught() {
        let mut p = ProgramBuilder::new("t");
        let rec = p.declare_routine("rec");
        p.define_routine(rec, |r| {
            r.call(rec);
        });
        p.set_entry(rec);
        let prog = p.finish();
        let err = Executor::new(&prog).run(&mut VecSink::new()).unwrap_err();
        assert!(matches!(err, ExecError::CallDepthExceeded(_)));
    }

    #[test]
    fn empty_range_loop_body_never_runs() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.for_("i", 5, 2, |r, i| {
                r.load(a, vec![Expr::var(i)]);
            });
        });
        let prog = p.finish();
        let mut sink = VecSink::new();
        let report = Executor::new(&prog).run(&mut sink).unwrap();
        assert_eq!(report.accesses, 0);
        let scope = prog.scope_by_name("i").unwrap();
        assert_eq!(report.scope_stats(scope).entries, 1);
        assert_eq!(report.scope_stats(scope).iterations, 0);
    }
}
