//! Validated decoding of [`TraceBuffer`](crate::TraceBuffer) columns.
//!
//! The fast [`replay`](crate::TraceBuffer::replay) path trusts the buffer:
//! it was produced by this crate's encoder, so it indexes and shifts
//! without checks. Buffers that cross a process or file boundary — or that
//! an operator simply cannot vouch for — must instead go through
//! [`try_replay`](crate::TraceBuffer::try_replay) /
//! [`validate`](crate::TraceBuffer::validate), which decode through the
//! checked reader defined here and turn every malformation into a
//! [`DecodeError`] with byte-offset diagnostics instead of a panic or a
//! silently wrong event stream.
//!
//! The checks cover, per event:
//!
//! * **truncation** — a column runs out of bytes mid-stream;
//! * **malformed varints** — a continuation chain longer than ten bytes or
//!   carrying payload bits past bit 63 (this is also how a corrupted
//!   address delta that cannot fit the 64-bit delta encoding surfaces);
//! * **field ranges** — reference ids and scope ids must fit `u32`, access
//!   sizes must fit `u32`;
//! * **scope balance** — every exit must match the innermost open enter,
//!   and every enter must be closed by end of stream;
//! * **count mismatches** — after the declared number of events, every
//!   column must be fully consumed (no trailing bytes) and the opcode
//!   column must hold exactly the declared number of 2-bit lanes.

use std::error::Error;
use std::fmt;

/// Which encoded column a [`DecodeError`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Column {
    /// The packed 2-bit opcode column.
    Ops,
    /// Zigzag-varint address deltas.
    Addr,
    /// Zigzag-varint reference-id deltas.
    Ref,
    /// Varint access sizes.
    Size,
    /// Varint scope ids.
    Scope,
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Column::Ops => "opcode",
            Column::Addr => "address",
            Column::Ref => "reference",
            Column::Size => "size",
            Column::Scope => "scope",
        })
    }
}

/// A malformation found while decoding a [`TraceBuffer`](crate::TraceBuffer).
///
/// Every variant names the column and the byte offset (or event index)
/// where decoding stopped, so a corrupted capture can be located in the
/// encoded stream, not just rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A column ended before the declared event count was decoded.
    Truncated {
        /// Column that ran dry.
        column: Column,
        /// Byte offset (into that column) where the unfinished value began.
        offset: usize,
        /// Index of the event being decoded when the bytes ran out.
        event: u64,
    },
    /// A varint had more than ten continuation bytes or carried payload
    /// bits past bit 63 — including overflowed address deltas.
    VarintOverflow {
        /// Column containing the malformed varint.
        column: Column,
        /// Byte offset of the varint's first byte.
        offset: usize,
        /// Index of the event being decoded.
        event: u64,
    },
    /// Accumulated reference-id deltas left the `u32` range.
    RefOutOfRange {
        /// Index of the offending access event.
        event: u64,
        /// The out-of-range accumulated reference id.
        value: i64,
    },
    /// An access size did not fit `u32`.
    SizeOutOfRange {
        /// Index of the offending access event.
        event: u64,
        /// The decoded size.
        value: u64,
    },
    /// A scope id did not fit `u32`.
    ScopeOutOfRange {
        /// Index of the offending scope event.
        event: u64,
        /// The decoded scope id.
        value: u64,
    },
    /// A scope exit did not match the innermost open scope.
    UnbalancedExit {
        /// Index of the offending exit event.
        event: u64,
        /// Scope id the exit named.
        scope: u32,
        /// Innermost open scope, or `None` if no scope was open.
        expected: Option<u32>,
    },
    /// The stream ended with scopes still open.
    UnclosedScopes {
        /// How many enters were never exited.
        depth: usize,
    },
    /// A column held more bytes than the declared events consume.
    TrailingBytes {
        /// Column with leftover bytes.
        column: Column,
        /// Bytes actually consumed by decoding.
        consumed: usize,
        /// Total bytes the column holds.
        len: usize,
    },
    /// A declared count field did not match what decoding observed —
    /// an imported image whose header disagrees with its own columns.
    CountMismatch {
        /// Which count disagreed (`"access"` or `"event"`).
        what: &'static str,
        /// The count the image declared.
        declared: u64,
        /// The count decoding actually observed.
        actual: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { column, offset, event } => write!(
                f,
                "{column} column truncated at byte {offset} (event {event})"
            ),
            DecodeError::VarintOverflow { column, offset, event } => write!(
                f,
                "malformed varint in {column} column at byte {offset} (event {event})"
            ),
            DecodeError::RefOutOfRange { event, value } => {
                write!(f, "reference id {value} out of u32 range at event {event}")
            }
            DecodeError::SizeOutOfRange { event, value } => {
                write!(f, "access size {value} out of u32 range at event {event}")
            }
            DecodeError::ScopeOutOfRange { event, value } => {
                write!(f, "scope id {value} out of u32 range at event {event}")
            }
            DecodeError::UnbalancedExit { event, scope, expected } => match expected {
                Some(top) => write!(
                    f,
                    "scope exit {scope} at event {event} does not match open scope {top}"
                ),
                None => write!(f, "scope exit {scope} at event {event} with no scope open"),
            },
            DecodeError::UnclosedScopes { depth } => {
                write!(f, "stream ended with {depth} scope(s) still open")
            }
            DecodeError::TrailingBytes { column, consumed, len } => write!(
                f,
                "{column} column has {} trailing byte(s) ({consumed} consumed of {len})",
                len - consumed
            ),
            DecodeError::CountMismatch { what, declared, actual } => write!(
                f,
                "declared {what} count {declared} does not match decoded {actual}"
            ),
        }
    }
}

impl Error for DecodeError {}

/// Reads one varint from `bytes` at `*pos`, rejecting truncated and
/// overlong encodings.
pub(crate) fn try_varint(
    bytes: &[u8],
    pos: &mut usize,
    column: Column,
    event: u64,
) -> Result<u64, DecodeError> {
    let start = *pos;
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(DecodeError::Truncated {
                column,
                offset: start,
                event,
            });
        };
        *pos += 1;
        if shift > 63 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(DecodeError::VarintOverflow {
                column,
                offset: start,
                event,
            });
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_varint_accepts_valid_encodings() {
        let bytes = [0x00, 0x7f, 0x80, 0x01, 0xff, 0xff, 0x01];
        let mut pos = 0;
        assert_eq!(try_varint(&bytes, &mut pos, Column::Addr, 0), Ok(0));
        assert_eq!(try_varint(&bytes, &mut pos, Column::Addr, 1), Ok(127));
        assert_eq!(try_varint(&bytes, &mut pos, Column::Addr, 2), Ok(128));
        assert_eq!(try_varint(&bytes, &mut pos, Column::Addr, 3), Ok(0x7fff));
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn try_varint_accepts_u64_max() {
        // 9 continuation bytes + final byte 0x01: the canonical u64::MAX.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut pos = 0;
        assert_eq!(try_varint(&bytes, &mut pos, Column::Size, 0), Ok(u64::MAX));
    }

    #[test]
    fn try_varint_rejects_truncation() {
        let bytes = [0x80, 0x80];
        let mut pos = 0;
        assert_eq!(
            try_varint(&bytes, &mut pos, Column::Ref, 7),
            Err(DecodeError::Truncated {
                column: Column::Ref,
                offset: 0,
                event: 7
            })
        );
    }

    #[test]
    fn try_varint_rejects_overflow() {
        // Eleven continuation bytes.
        let bytes = [0x80; 11];
        let mut pos = 0;
        assert!(matches!(
            try_varint(&bytes, &mut pos, Column::Addr, 3),
            Err(DecodeError::VarintOverflow { column: Column::Addr, offset: 0, event: 3 })
        ));
        // Tenth byte carrying bits past bit 63.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert!(matches!(
            try_varint(&bytes, &mut pos, Column::Addr, 0),
            Err(DecodeError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn errors_display_offsets_and_columns() {
        let e = DecodeError::Truncated {
            column: Column::Scope,
            offset: 12,
            event: 9,
        };
        let s = e.to_string();
        assert!(s.contains("scope"), "{s}");
        assert!(s.contains("12"), "{s}");
        assert!(s.contains("9"), "{s}");
        let t = DecodeError::TrailingBytes {
            column: Column::Size,
            consumed: 3,
            len: 5,
        }
        .to_string();
        assert!(t.contains("2 trailing"), "{t}");
    }
}
