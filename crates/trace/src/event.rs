//! The instrumentation event stream and sinks that consume it.
//!
//! The paper's tool rewrites a binary so that every memory operation and
//! every routine/loop entry and exit invokes an event handler. Here the
//! executor produces the identical stream; analyzers implement
//! [`TraceSink`] to play the role of the event handlers.

use reuselens_ir::{AccessKind, RefId, ScopeId};

/// One instrumentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A memory access by static reference `r` touching `size` bytes at
    /// virtual address `addr`.
    Access {
        /// The static reference performing the access.
        r: RefId,
        /// Virtual byte address accessed.
        addr: u64,
        /// Access width in bytes (the array's element size).
        size: u32,
        /// Load or store.
        kind: AccessKind,
    },
    /// A routine or loop scope was entered.
    Enter(ScopeId),
    /// The matching scope was exited.
    Exit(ScopeId),
}

/// One decoded memory access, the unit of the batched sink API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRecord {
    /// The static reference performing the access.
    pub r: RefId,
    /// Virtual byte address accessed.
    pub addr: u64,
    /// Access width in bytes.
    pub size: u32,
    /// Load or store.
    pub kind: AccessKind,
}

/// Receives instrumentation events during execution.
///
/// Implementations are the moral equivalent of the paper's event-handler
/// routines: the reuse-distance analyzer, the cache simulator, or simple
/// collectors. Methods are infallible — analysis state is internal and
/// execution cannot fail on the consumer side.
pub trait TraceSink {
    /// Called for every memory access, in program order.
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind);
    /// Called when a routine or loop scope is entered.
    fn enter(&mut self, scope: ScopeId);
    /// Called when a routine or loop scope is exited.
    fn exit(&mut self, scope: ScopeId);
    /// Called with a run of consecutive accesses (no scope transitions in
    /// between). Replay from a [`crate::TraceBuffer`] uses this to amortize
    /// dynamic dispatch: one virtual call per batch instead of per event.
    /// The default forwards to [`access`](Self::access) record by record.
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        for a in batch {
            self.access(a.r, a.addr, a.size, a.kind);
        }
    }
}

/// A sink that discards all events (useful for measuring executor overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn access(&mut self, _r: RefId, _addr: u64, _size: u32, _kind: AccessKind) {}
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

/// A sink that records the full event stream in memory. Intended for tests
/// and small kernels; real analyses consume events online.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecSink {
    /// The recorded events, in program order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Just the access events, in order.
    pub fn accesses(&self) -> impl Iterator<Item = (RefId, u64, u32, AccessKind)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Access { r, addr, size, kind } => Some((*r, *addr, *size, *kind)),
            _ => None,
        })
    }

    /// Just the accessed addresses, in order.
    pub fn addresses(&self) -> Vec<u64> {
        self.accesses().map(|(_, a, _, _)| a).collect()
    }
}

impl TraceSink for VecSink {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        self.events.push(Event::Access { r, addr, size, kind });
    }
    fn enter(&mut self, scope: ScopeId) {
        self.events.push(Event::Enter(scope));
    }
    fn exit(&mut self, scope: ScopeId) {
        self.events.push(Event::Exit(scope));
    }
}

/// Fans one event stream out to two sinks (e.g. an analyzer and a cache
/// simulator sharing a single execution).
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(a: A, b: B) -> TeeSink<A, B> {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        self.a.access(r, addr, size, kind);
        self.b.access(r, addr, size, kind);
    }
    fn enter(&mut self, scope: ScopeId) {
        self.a.enter(scope);
        self.b.enter(scope);
    }
    fn exit(&mut self, scope: ScopeId) {
        self.a.exit(scope);
        self.b.exit(scope);
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        self.a.access_batch(batch);
        self.b.access_batch(batch);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        (**self).access(r, addr, size, kind);
    }
    fn enter(&mut self, scope: ScopeId) {
        (**self).enter(scope);
    }
    fn exit(&mut self, scope: ScopeId) {
        (**self).exit(scope);
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        (**self).access_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.enter(ScopeId(1));
        s.access(RefId(0), 0x100, 8, AccessKind::Load);
        s.exit(ScopeId(1));
        assert_eq!(
            s.events,
            vec![
                Event::Enter(ScopeId(1)),
                Event::Access {
                    r: RefId(0),
                    addr: 0x100,
                    size: 8,
                    kind: AccessKind::Load
                },
                Event::Exit(ScopeId(1)),
            ]
        );
        assert_eq!(s.addresses(), vec![0x100]);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut tee = TeeSink::new(VecSink::new(), VecSink::new());
        tee.access(RefId(1), 0x40, 4, AccessKind::Store);
        assert_eq!(tee.a.events, tee.b.events);
        assert_eq!(tee.a.events.len(), 1);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed(sink: &mut impl TraceSink) {
            sink.enter(ScopeId(2));
        }
        let mut s = VecSink::new();
        feed(&mut &mut s);
        assert_eq!(s.events, vec![Event::Enter(ScopeId(2))]);
    }
}
