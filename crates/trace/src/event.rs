//! The instrumentation event stream and sinks that consume it.
//!
//! The paper's tool rewrites a binary so that every memory operation and
//! every routine/loop entry and exit invokes an event handler. Here the
//! executor produces the identical stream; analyzers implement
//! [`TraceSink`] to play the role of the event handlers.

use reuselens_ir::{AccessKind, RefId, ScopeId};

/// One instrumentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A memory access by static reference `r` touching `size` bytes at
    /// virtual address `addr`.
    Access {
        /// The static reference performing the access.
        r: RefId,
        /// Virtual byte address accessed.
        addr: u64,
        /// Access width in bytes (the array's element size).
        size: u32,
        /// Load or store.
        kind: AccessKind,
    },
    /// A routine or loop scope was entered.
    Enter(ScopeId),
    /// The matching scope was exited.
    Exit(ScopeId),
}

/// One decoded memory access, the unit of the batched sink API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRecord {
    /// The static reference performing the access.
    pub r: RefId,
    /// Virtual byte address accessed.
    pub addr: u64,
    /// Access width in bytes.
    pub size: u32,
    /// Load or store.
    pub kind: AccessKind,
}

/// A run of consecutive decoded accesses in struct-of-arrays layout: one
/// contiguous lane per field instead of an array of [`AccessRecord`]s.
///
/// The [`TraceBuffer`](crate::TraceBuffer) encoder is columnar, so batch
/// decoding fills these lanes directly — no per-event struct is ever
/// materialized — and analyzers that override
/// [`TraceSink::access_soa`] can stream each lane independently (e.g.
/// shifting the whole address lane down to block numbers in one
/// vectorizable loop). All four lanes always have equal length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoaBatch {
    /// Static reference ids, one per access.
    pub refs: Vec<u32>,
    /// Virtual byte addresses, one per access.
    pub addrs: Vec<u64>,
    /// Access widths in bytes, one per access.
    pub sizes: Vec<u32>,
    /// Load/store kinds, one per access.
    pub kinds: Vec<AccessKind>,
}

impl SoaBatch {
    /// Creates an empty batch with capacity for `n` accesses per lane.
    pub fn with_capacity(n: usize) -> SoaBatch {
        SoaBatch {
            refs: Vec::with_capacity(n),
            addrs: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
        }
    }

    /// Number of accesses in the batch.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the batch holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Empties every lane, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.refs.clear();
        self.addrs.clear();
        self.sizes.clear();
        self.kinds.clear();
    }

    /// Appends one access to every lane.
    #[inline]
    pub fn push(&mut self, r: u32, addr: u64, size: u32, kind: AccessKind) {
        self.refs.push(r);
        self.addrs.push(addr);
        self.sizes.push(size);
        self.kinds.push(kind);
    }

    /// The access at index `i` as a record (convenience for tests and
    /// non-hot-path consumers).
    pub fn record(&self, i: usize) -> AccessRecord {
        AccessRecord {
            r: RefId(self.refs[i]),
            addr: self.addrs[i],
            size: self.sizes[i],
            kind: self.kinds[i],
        }
    }
}

/// Chunk size the default [`TraceSink::access_soa`] bridge converts at a
/// time; matches the replay batch size so bridged sinks observe the same
/// `access_batch` call pattern as before the SoA decode path existed.
const SOA_BRIDGE_CHUNK: usize = 256;

/// Receives instrumentation events during execution.
///
/// Implementations are the moral equivalent of the paper's event-handler
/// routines: the reuse-distance analyzer, the cache simulator, or simple
/// collectors. Methods are infallible — analysis state is internal and
/// execution cannot fail on the consumer side.
pub trait TraceSink {
    /// Called for every memory access, in program order.
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind);
    /// Called when a routine or loop scope is entered.
    fn enter(&mut self, scope: ScopeId);
    /// Called when a routine or loop scope is exited.
    fn exit(&mut self, scope: ScopeId);
    /// Called with a run of consecutive accesses (no scope transitions in
    /// between). Replay from a [`crate::TraceBuffer`] uses this to amortize
    /// dynamic dispatch: one virtual call per batch instead of per event.
    /// The default forwards to [`access`](Self::access) record by record.
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        for a in batch {
            self.access(a.r, a.addr, a.size, a.kind);
        }
    }
    /// Called with a run of consecutive accesses in struct-of-arrays
    /// layout. Replay decodes straight into [`SoaBatch`] lanes; analyzers
    /// that can consume lanes override this and skip the per-record
    /// conversion entirely. The default bridges into a fixed stack array
    /// and forwards to [`access_batch`](Self::access_batch) — zero heap
    /// allocation, and sinks that only override `access_batch` observe the
    /// exact call pattern the array-of-structs replay produced.
    fn access_soa(&mut self, batch: &SoaBatch) {
        let mut tmp = [AccessRecord {
            r: RefId(0),
            addr: 0,
            size: 0,
            kind: AccessKind::Load,
        }; SOA_BRIDGE_CHUNK];
        let n = batch.len();
        let mut start = 0;
        while start < n {
            let m = (n - start).min(SOA_BRIDGE_CHUNK);
            for (i, slot) in tmp[..m].iter_mut().enumerate() {
                *slot = batch.record(start + i);
            }
            self.access_batch(&tmp[..m]);
            start += m;
        }
    }
}

/// A sink that discards all events (useful for measuring executor overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn access(&mut self, _r: RefId, _addr: u64, _size: u32, _kind: AccessKind) {}
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

/// A sink that records the full event stream in memory. Intended for tests
/// and small kernels; real analyses consume events online.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecSink {
    /// The recorded events, in program order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Just the access events, in order.
    pub fn accesses(&self) -> impl Iterator<Item = (RefId, u64, u32, AccessKind)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Access { r, addr, size, kind } => Some((*r, *addr, *size, *kind)),
            _ => None,
        })
    }

    /// Just the accessed addresses, in order.
    pub fn addresses(&self) -> Vec<u64> {
        self.accesses().map(|(_, a, _, _)| a).collect()
    }
}

impl TraceSink for VecSink {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        self.events.push(Event::Access { r, addr, size, kind });
    }
    fn enter(&mut self, scope: ScopeId) {
        self.events.push(Event::Enter(scope));
    }
    fn exit(&mut self, scope: ScopeId) {
        self.events.push(Event::Exit(scope));
    }
}

/// Fans one event stream out to two sinks (e.g. an analyzer and a cache
/// simulator sharing a single execution).
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(a: A, b: B) -> TeeSink<A, B> {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        self.a.access(r, addr, size, kind);
        self.b.access(r, addr, size, kind);
    }
    fn enter(&mut self, scope: ScopeId) {
        self.a.enter(scope);
        self.b.enter(scope);
    }
    fn exit(&mut self, scope: ScopeId) {
        self.a.exit(scope);
        self.b.exit(scope);
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        self.a.access_batch(batch);
        self.b.access_batch(batch);
    }
    fn access_soa(&mut self, batch: &SoaBatch) {
        self.a.access_soa(batch);
        self.b.access_soa(batch);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        (**self).access(r, addr, size, kind);
    }
    fn enter(&mut self, scope: ScopeId) {
        (**self).enter(scope);
    }
    fn exit(&mut self, scope: ScopeId) {
        (**self).exit(scope);
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        (**self).access_batch(batch);
    }
    fn access_soa(&mut self, batch: &SoaBatch) {
        (**self).access_soa(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.enter(ScopeId(1));
        s.access(RefId(0), 0x100, 8, AccessKind::Load);
        s.exit(ScopeId(1));
        assert_eq!(
            s.events,
            vec![
                Event::Enter(ScopeId(1)),
                Event::Access {
                    r: RefId(0),
                    addr: 0x100,
                    size: 8,
                    kind: AccessKind::Load
                },
                Event::Exit(ScopeId(1)),
            ]
        );
        assert_eq!(s.addresses(), vec![0x100]);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut tee = TeeSink::new(VecSink::new(), VecSink::new());
        tee.access(RefId(1), 0x40, 4, AccessKind::Store);
        assert_eq!(tee.a.events, tee.b.events);
        assert_eq!(tee.a.events.len(), 1);
    }

    #[test]
    fn soa_default_bridges_in_replay_sized_chunks() {
        /// Records the `access_batch` call sizes the default SoA bridge makes.
        #[derive(Default)]
        struct Counting {
            batches: Vec<usize>,
            records: Vec<AccessRecord>,
        }
        impl TraceSink for Counting {
            fn access(&mut self, _: RefId, _: u64, _: u32, _: AccessKind) {
                unreachable!("bridge must go through access_batch");
            }
            fn access_batch(&mut self, batch: &[AccessRecord]) {
                self.batches.push(batch.len());
                self.records.extend_from_slice(batch);
            }
            fn enter(&mut self, _: ScopeId) {}
            fn exit(&mut self, _: ScopeId) {}
        }

        let mut soa = SoaBatch::with_capacity(600);
        for i in 0..600u64 {
            let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            soa.push((i % 7) as u32, 0x1000 + i * 16, 8, kind);
        }
        let mut sink = Counting::default();
        sink.access_soa(&soa);
        assert_eq!(sink.batches, vec![256, 256, 88]);
        assert_eq!(sink.records.len(), 600);
        for (i, rec) in sink.records.iter().enumerate() {
            assert_eq!(*rec, soa.record(i), "record {i} must survive the bridge");
        }
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed(sink: &mut impl TraceSink) {
            sink.enter(ScopeId(2));
        }
        let mut s = VecSink::new();
        feed(&mut &mut s);
        assert_eq!(s.events, vec![Event::Enter(ScopeId(2))]);
    }
}
