//! Compact in-memory trace capture for capture-once / replay-many analysis.
//!
//! The paper's toolchain pays its cost in the online loop: every memory
//! access walks the analyzer's data structures, and doing so per block
//! granularity (and again per cache configuration) repeats the expensive
//! part. A [`TraceBuffer`] decouples the two halves: the program is
//! interpreted **once** (capture), producing a compact columnar encoding of
//! the event stream, which any number of consumers then
//! [`replay`](TraceBuffer::replay) at memory-bandwidth speed — sequentially
//! or from several threads sharing one immutable buffer.
//!
//! ## Encoding
//!
//! Columnar, with one stream per field so each column compresses on its
//! own regularity:
//!
//! * **opcodes** — 2 bits per event (load / store / enter / exit), packed
//!   four to a byte;
//! * **addresses** — zigzag varint of the delta from the previous access
//!   (strided sweeps become 1-byte deltas);
//! * **references** — zigzag varint of the [`RefId`] delta (loop bodies
//!   cycle through a few ids, so deltas are tiny);
//! * **sizes** — varint (element sizes are small constants);
//! * **scopes** — varint [`ScopeId`] per enter/exit.
//!
//! Typical traces encode at 2–3 bytes per event versus 24 bytes for a
//! `Vec<Event>`; [`BufferStats::compression_ratio`] reports the measured
//! figure.

use crate::decode::{try_varint, Column, DecodeError};
use crate::event::{AccessRecord, Event, SoaBatch, TraceSink};
use reuselens_ir::{AccessKind, RefId, ScopeId};
use reuselens_obs as obs;

/// Events handed to [`TraceSink::access_soa`] per virtual call during
/// replay. Large enough to amortize dispatch, small enough to stay in L1.
const BATCH: usize = 256;

/// Capture-side checkpoint spacing in events. Each checkpoint snapshots
/// the decoder state at an event boundary so
/// [`TraceBuffer::segment_states`] can seek near an arbitrary event
/// without decoding the whole prefix; 64 Ki events keeps the snapshot
/// overhead (one small struct plus the open-scope stack) far below 0.1%
/// of the encoded stream.
const CHECKPOINT_EVERY: u64 = 65_536;

const OP_LOAD: u8 = 0;
const OP_STORE: u8 = 1;
const OP_ENTER: u8 = 2;
const OP_EXIT: u8 = 3;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    // One-byte fast path: almost every delta on a real trace (unit-stride
    // addresses, adjacent reference ids, small sizes) fits in 7 bits.
    let b = bytes[*pos];
    *pos += 1;
    if b < 0x80 {
        return u64::from(b);
    }
    let mut v = u64::from(b & 0x7f);
    let mut shift = 7;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Capture-side observability: what the buffer holds and what the columnar
/// encoding saved relative to materializing `Vec<Event>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Total events captured (accesses + scope transitions).
    pub events: u64,
    /// Memory-access events.
    pub accesses: u64,
    /// Scope enter/exit events.
    pub scope_events: u64,
    /// Bytes the encoded columns occupy.
    pub encoded_bytes: u64,
    /// Bytes an uncompressed `Vec<Event>` of the same stream would occupy.
    pub raw_bytes: u64,
}

impl BufferStats {
    /// Raw-to-encoded size ratio (higher is better; 1.0 when empty).
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

impl std::fmt::Display for BufferStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events ({} accesses) in {} B ({:.1}x vs {} B raw)",
            self.events,
            self.accesses,
            self.encoded_bytes,
            self.compression_ratio(),
            self.raw_bytes,
        )
    }
}

/// A compact, immutable-after-capture recording of one execution's event
/// stream.
///
/// Implements [`TraceSink`], so it plugs straight into
/// [`Executor::run`](crate::Executor::run); afterwards,
/// [`replay`](Self::replay) feeds any other sink the identical stream, as
/// many times as needed, without re-interpreting the program.
///
/// # Examples
///
/// ```
/// use reuselens_ir::ProgramBuilder;
/// use reuselens_trace::{Executor, TraceBuffer, VecSink};
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[64]);
/// p.routine("main", |r| {
///     r.for_("i", 0, 63, |r, i| {
///         r.load(a, vec![i.into()]);
///     });
/// });
/// let prog = p.finish();
///
/// // Capture once...
/// let mut buf = TraceBuffer::new();
/// Executor::new(&prog).run(&mut buf)?;
///
/// // ...replay many times; the stream is identical to a live execution.
/// let mut direct = VecSink::new();
/// Executor::new(&prog).run(&mut direct)?;
/// let mut replayed = VecSink::new();
/// buf.replay(&mut replayed);
/// assert_eq!(direct, replayed);
/// assert!(buf.stats().compression_ratio() > 4.0);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    pub(crate) ops: Vec<u8>,
    pub(crate) events: u64,
    pub(crate) accesses: u64,
    pub(crate) scope_events: u64,
    pub(crate) addr_bytes: Vec<u8>,
    pub(crate) ref_bytes: Vec<u8>,
    pub(crate) size_bytes: Vec<u8>,
    pub(crate) scope_bytes: Vec<u8>,
    // Encoder state (deltas are relative to the previous access).
    pub(crate) last_addr: u64,
    pub(crate) last_ref: u32,
    // Capture-side seek index: decoder state every CHECKPOINT_EVERY
    // events, plus the live open-scope stack the snapshots copy.
    pub(crate) checkpoints: Vec<Checkpoint>,
    pub(crate) open_scopes: Vec<(u32, u64)>,
}

/// One capture-side snapshot of the decoder state at an event boundary
/// (taken *before* the event at `event` was encoded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Checkpoint {
    pub(crate) event: u64,
    pub(crate) accesses: u64,
    pub(crate) addr_pos: usize,
    pub(crate) ref_pos: usize,
    pub(crate) size_pos: usize,
    pub(crate) scope_pos: usize,
    pub(crate) last_addr: u64,
    pub(crate) last_ref: u32,
    pub(crate) open_scopes: Vec<(u32, u64)>,
}

/// The full decoder state at one event boundary of a [`TraceBuffer`]:
/// everything needed to start decoding mid-stream, plus the dynamic
/// context (access clock and open scopes) a mid-stream consumer needs to
/// interpret what it sees. Produced by
/// [`TraceBuffer::segment_states`], consumed by
/// [`TraceBuffer::replay_segment`] — the seek API behind time-partitioned
/// parallel replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentState {
    /// Index of the first event of the segment.
    pub event: u64,
    /// Memory accesses executed before the segment — the global access
    /// clock at the segment's start.
    pub accesses: u64,
    /// Scopes open at the segment's start, outermost first (the program
    /// root is implied, not listed), each with the global access clock at
    /// its entry.
    pub scopes: Vec<(ScopeId, u64)>,
    pub(crate) addr_pos: usize,
    pub(crate) ref_pos: usize,
    pub(crate) size_pos: usize,
    pub(crate) scope_pos: usize,
    pub(crate) last_addr: u64,
    pub(crate) last_ref: u32,
}

/// The portable on-disk / wire image of a [`TraceBuffer`]: the raw encoded
/// columns plus the declared counts, nothing else. Produced by
/// [`TraceBuffer::export`], consumed by [`TraceBuffer::import`] (which
/// validates every byte and regenerates the checkpoint seek index). The
/// trace store frames and checksums these columns; this type is the
/// boundary between the capture engine and any persistence layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExportedTrace {
    /// Total events (accesses + scope transitions) the columns encode.
    pub events: u64,
    /// Memory-access events.
    pub accesses: u64,
    /// Scope enter/exit events.
    pub scope_events: u64,
    /// Packed 2-bit opcode column, four events per byte.
    pub ops: Vec<u8>,
    /// Zigzag-varint address-delta column.
    pub addr_bytes: Vec<u8>,
    /// Zigzag-varint reference-id-delta column.
    pub ref_bytes: Vec<u8>,
    /// Varint access-size column.
    pub size_bytes: Vec<u8>,
    /// Varint scope-id column.
    pub scope_bytes: Vec<u8>,
}

impl ExportedTrace {
    /// Bytes the five encoded columns occupy.
    pub fn encoded_bytes(&self) -> u64 {
        (self.ops.len()
            + self.addr_bytes.len()
            + self.ref_bytes.len()
            + self.size_bytes.len()
            + self.scope_bytes.len()) as u64
    }
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// Total events captured.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Memory-access events captured.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Bytes occupied by the encoded columns.
    pub fn encoded_bytes(&self) -> u64 {
        (self.ops.len()
            + self.addr_bytes.len()
            + self.ref_bytes.len()
            + self.size_bytes.len()
            + self.scope_bytes.len()) as u64
    }

    /// Capture statistics: event counts, encoded size, compression ratio.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            events: self.events,
            accesses: self.accesses,
            scope_events: self.scope_events,
            encoded_bytes: self.encoded_bytes(),
            raw_bytes: self.events * std::mem::size_of::<Event>() as u64,
        }
    }

    #[inline]
    fn push_op(&mut self, op: u8) {
        if self.events.is_multiple_of(CHECKPOINT_EVERY) && self.events > 0 {
            self.checkpoints.push(Checkpoint {
                event: self.events,
                accesses: self.accesses,
                addr_pos: self.addr_bytes.len(),
                ref_pos: self.ref_bytes.len(),
                size_pos: self.size_bytes.len(),
                scope_pos: self.scope_bytes.len(),
                last_addr: self.last_addr,
                last_ref: self.last_ref,
                open_scopes: self.open_scopes.clone(),
            });
        }
        let slot = (self.events % 4) as u32 * 2;
        match self.ops.last_mut() {
            Some(last) if slot != 0 => *last |= op << slot,
            _ => self.ops.push(op),
        }
        self.events += 1;
    }

    /// Replays the captured stream into `sink`, decoding straight into
    /// struct-of-arrays lanes and handing each run of consecutive accesses
    /// to [`TraceSink::access_soa`] (whose default bridges to
    /// [`TraceSink::access_batch`]). The buffer is unchanged and can be
    /// replayed concurrently from many threads.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        self.decode_range(&SegmentState::default(), self.events, sink);
        obs::add(obs::Counter::EventsDecoded, self.events);
        obs::add(obs::Counter::AccessesDecoded, self.accesses);
    }

    /// Replays the half-open event range `[from.event, to_event)` into
    /// `sink`, starting from a [`SegmentState`] produced by
    /// [`segment_states`](Self::segment_states) on this same buffer.
    /// `to_event` is clamped to the captured event count. Like
    /// [`replay`](Self::replay), this is the unchecked fast path: it
    /// trusts the buffer (and the state) to be well-formed.
    pub fn replay_segment<S: TraceSink + ?Sized>(
        &self,
        from: &SegmentState,
        to_event: u64,
        sink: &mut S,
    ) {
        let to_event = to_event.min(self.events);
        if to_event <= from.event {
            return;
        }
        let accesses = self.decode_range(from, to_event, sink);
        obs::add(obs::Counter::EventsDecoded, to_event - from.event);
        obs::add(obs::Counter::AccessesDecoded, accesses);
    }

    /// The shared unchecked decode loop behind [`replay`](Self::replay)
    /// and [`replay_segment`](Self::replay_segment). Returns the number of
    /// access events decoded.
    fn decode_range<S: TraceSink + ?Sized>(
        &self,
        from: &SegmentState,
        to_event: u64,
        sink: &mut S,
    ) -> u64 {
        let mut batch = SoaBatch::with_capacity(BATCH);
        let mut addr = from.last_addr;
        let mut r = from.last_ref;
        let (mut ap, mut rp, mut sp, mut cp) = (
            from.addr_pos,
            from.ref_pos,
            from.size_pos,
            from.scope_pos,
        );
        let mut accesses = 0u64;
        for i in from.event..to_event {
            let op = (self.ops[(i / 4) as usize] >> ((i % 4) * 2)) & 0b11;
            match op {
                OP_LOAD | OP_STORE => {
                    addr = addr.wrapping_add(unzigzag(get_varint(&self.addr_bytes, &mut ap)) as u64);
                    r = (i64::from(r) + unzigzag(get_varint(&self.ref_bytes, &mut rp))) as u32;
                    let size = get_varint(&self.size_bytes, &mut sp) as u32;
                    let kind = if op == OP_LOAD {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    };
                    batch.push(r, addr, size, kind);
                    accesses += 1;
                    if batch.len() == BATCH {
                        sink.access_soa(&batch);
                        batch.clear();
                    }
                }
                _ => {
                    if !batch.is_empty() {
                        sink.access_soa(&batch);
                        batch.clear();
                    }
                    let scope = ScopeId(get_varint(&self.scope_bytes, &mut cp) as u32);
                    if op == OP_ENTER {
                        sink.enter(scope);
                    } else {
                        sink.exit(scope);
                    }
                }
            }
        }
        if !batch.is_empty() {
            sink.access_soa(&batch);
        }
        accesses
    }

    /// Splits the captured stream into `parts` contiguous time segments of
    /// (nearly) equal event count and returns the decoder state at the
    /// start of each — segment `k` covers events
    /// `[states[k].event, states[k + 1].event)` (the last segment ends at
    /// [`events`](Self::events)). One forward scan computes every state,
    /// fast-forwarding through the capture-side checkpoints where they are
    /// self-consistent and falling back to pure decoding where they are
    /// not (e.g. a buffer forged or corrupted after capture), so the
    /// result is a function of the encoded columns alone.
    pub fn segment_states(&self, parts: usize) -> Vec<SegmentState> {
        let parts = parts.max(1);
        let mut out = Vec::with_capacity(parts);
        let mut cur = SegmentState::default();
        let mut next_ckpt = 0usize;
        for k in 0..parts as u64 {
            let target = self.events * k / parts as u64;
            while next_ckpt < self.checkpoints.len() {
                let c = &self.checkpoints[next_ckpt];
                if c.event > target {
                    break;
                }
                next_ckpt += 1;
                if c.event >= cur.event && self.checkpoint_sane(c) {
                    cur = SegmentState {
                        event: c.event,
                        accesses: c.accesses,
                        scopes: c
                            .open_scopes
                            .iter()
                            .map(|&(s, t)| (ScopeId(s), t))
                            .collect(),
                        addr_pos: c.addr_pos,
                        ref_pos: c.ref_pos,
                        size_pos: c.size_pos,
                        scope_pos: c.scope_pos,
                        last_addr: c.last_addr,
                        last_ref: c.last_ref,
                    };
                }
            }
            self.advance_state(&mut cur, target);
            out.push(cur.clone());
        }
        out
    }

    /// The decoder state at one event boundary (clamped to the captured
    /// event count) — [`segment_states`](Self::segment_states) for a
    /// single arbitrary target. Checkpoint/resume uses this to seek a
    /// resumed analysis to the event its snapshot was taken at without
    /// decoding the whole prefix.
    pub fn state_at(&self, event: u64) -> SegmentState {
        let target = event.min(self.events);
        let mut cur = SegmentState::default();
        for c in &self.checkpoints {
            if c.event > target {
                break;
            }
            if c.event >= cur.event && self.checkpoint_sane(c) {
                cur = SegmentState {
                    event: c.event,
                    accesses: c.accesses,
                    scopes: c
                        .open_scopes
                        .iter()
                        .map(|&(s, t)| (ScopeId(s), t))
                        .collect(),
                    addr_pos: c.addr_pos,
                    ref_pos: c.ref_pos,
                    size_pos: c.size_pos,
                    scope_pos: c.scope_pos,
                    last_addr: c.last_addr,
                    last_ref: c.last_ref,
                };
            }
        }
        self.advance_state(&mut cur, target);
        cur
    }

    /// Replays the half-open event range `[state.event, to_event)` into
    /// `sink` while advancing `state` in place to `to_event` — the fused
    /// combination of [`replay_segment`](Self::replay_segment) and
    /// [`state_at`](Self::state_at) that decodes each event exactly once.
    /// This is the streaming loop behind checkpoint/resume: the caller
    /// alternates chunks of replay with snapshots of the sink, and `state`
    /// always describes the boundary the next snapshot will be taken at.
    /// `to_event` is clamped to the captured event count. Like
    /// [`replay`](Self::replay), this is the unchecked fast path.
    pub fn replay_advance<S: TraceSink + ?Sized>(
        &self,
        state: &mut SegmentState,
        to_event: u64,
        sink: &mut S,
    ) {
        let to_event = to_event.min(self.events);
        if to_event <= state.event {
            return;
        }
        let from_event = state.event;
        let mut batch = SoaBatch::with_capacity(BATCH);
        let mut accesses = 0u64;
        for i in from_event..to_event {
            let op = (self.ops[(i / 4) as usize] >> ((i % 4) * 2)) & 0b11;
            match op {
                OP_LOAD | OP_STORE => {
                    state.last_addr = state.last_addr.wrapping_add(
                        unzigzag(get_varint(&self.addr_bytes, &mut state.addr_pos)) as u64,
                    );
                    state.last_ref = (i64::from(state.last_ref)
                        + unzigzag(get_varint(&self.ref_bytes, &mut state.ref_pos)))
                        as u32;
                    let size = get_varint(&self.size_bytes, &mut state.size_pos) as u32;
                    let kind = if op == OP_LOAD {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    };
                    batch.push(state.last_ref, state.last_addr, size, kind);
                    state.accesses += 1;
                    accesses += 1;
                    if batch.len() == BATCH {
                        sink.access_soa(&batch);
                        batch.clear();
                    }
                }
                _ => {
                    if !batch.is_empty() {
                        sink.access_soa(&batch);
                        batch.clear();
                    }
                    let scope = ScopeId(get_varint(&self.scope_bytes, &mut state.scope_pos) as u32);
                    if op == OP_ENTER {
                        sink.enter(scope);
                        state.scopes.push((scope, state.accesses));
                    } else {
                        sink.exit(scope);
                        state.scopes.pop();
                    }
                }
            }
        }
        if !batch.is_empty() {
            sink.access_soa(&batch);
        }
        state.event = to_event;
        obs::add(obs::Counter::EventsDecoded, to_event - from_event);
        obs::add(obs::Counter::AccessesDecoded, accesses);
    }

    /// Decodes forward from `cur` until it sits at event `target`,
    /// updating the decoder state and the dynamic scope context in place.
    fn advance_state(&self, cur: &mut SegmentState, target: u64) {
        while cur.event < target {
            let i = cur.event;
            let op = (self.ops[(i / 4) as usize] >> ((i % 4) * 2)) & 0b11;
            match op {
                OP_LOAD | OP_STORE => {
                    cur.last_addr = cur.last_addr.wrapping_add(
                        unzigzag(get_varint(&self.addr_bytes, &mut cur.addr_pos)) as u64,
                    );
                    cur.last_ref = (i64::from(cur.last_ref)
                        + unzigzag(get_varint(&self.ref_bytes, &mut cur.ref_pos)))
                        as u32;
                    let _ = get_varint(&self.size_bytes, &mut cur.size_pos);
                    cur.accesses += 1;
                }
                _ => {
                    let scope = get_varint(&self.scope_bytes, &mut cur.scope_pos) as u32;
                    if op == OP_ENTER {
                        cur.scopes.push((ScopeId(scope), cur.accesses));
                    } else {
                        cur.scopes.pop();
                    }
                }
            }
            cur.event += 1;
        }
    }

    /// A checkpoint is trusted only when every recorded position is in
    /// bounds for the columns this buffer actually holds; anything else
    /// (a buffer reassembled from raw columns, a corrupted capture) falls
    /// back to the pure decode scan.
    fn checkpoint_sane(&self, c: &Checkpoint) -> bool {
        c.event <= self.events
            && c.accesses <= c.event
            && c.addr_pos <= self.addr_bytes.len()
            && c.ref_pos <= self.ref_bytes.len()
            && c.size_pos <= self.size_bytes.len()
            && c.scope_pos <= self.scope_bytes.len()
    }

    /// Replays the captured stream into `sink` through the **validating**
    /// decoder: every event is checked (truncation, malformed varints,
    /// field ranges, scope balance, trailing bytes) *before* it reaches the
    /// sink, and any malformation is reported as a [`DecodeError`] with
    /// byte-offset diagnostics instead of panicking or emitting garbage.
    ///
    /// Use this for buffers of untrusted provenance; [`replay`](Self::replay)
    /// remains the unchecked fast path for buffers this process captured.
    ///
    /// # Errors
    ///
    /// Returns the first malformation found. The sink will already have
    /// observed the valid prefix of the stream — callers that need
    /// all-or-nothing semantics should [`validate`](Self::validate) first
    /// or discard the sink on error.
    pub fn try_replay<S: TraceSink + ?Sized>(&self, sink: &mut S) -> Result<(), DecodeError> {
        let mut span = obs::span(obs::Stage::Decode);
        let mut decoded_events = 0u64;
        let mut decoded_accesses = 0u64;
        let result = (|| {
            let mut batch: Vec<AccessRecord> = Vec::with_capacity(BATCH);
            let mut dec = Decoder::new(self)?;
            while let Some(event) = dec.next_event()? {
                decoded_events += 1;
                match event {
                    Event::Access { r, addr, size, kind } => {
                        decoded_accesses += 1;
                        batch.push(AccessRecord { r, addr, size, kind });
                        if batch.len() == BATCH {
                            sink.access_batch(&batch);
                            batch.clear();
                        }
                    }
                    Event::Enter(scope) => {
                        if !batch.is_empty() {
                            sink.access_batch(&batch);
                            batch.clear();
                        }
                        sink.enter(scope);
                    }
                    Event::Exit(scope) => {
                        if !batch.is_empty() {
                            sink.access_batch(&batch);
                            batch.clear();
                        }
                        sink.exit(scope);
                    }
                }
            }
            if !batch.is_empty() {
                sink.access_batch(&batch);
            }
            dec.finish()
        })();
        // The valid prefix was decoded and delivered even when the buffer
        // turns out malformed, so it counts either way.
        obs::add(obs::Counter::EventsDecoded, decoded_events);
        obs::add(obs::Counter::AccessesDecoded, decoded_accesses);
        span.record(|args| args.events = Some(decoded_events));
        result
    }

    /// Checks the full encoding without producing events: decodes every
    /// event through the validating decoder and verifies scope balance and
    /// exact column consumption.
    ///
    /// # Errors
    ///
    /// Returns the first malformation found; `Ok(())` guarantees that
    /// [`replay`](Self::replay) and [`iter`](Self::iter) will decode this
    /// buffer without panicking and will reproduce a well-formed stream.
    pub fn validate(&self) -> Result<(), DecodeError> {
        let mut span = obs::span(obs::Stage::Decode);
        let mut dec = Decoder::new(self)?;
        let mut events = 0u64;
        while dec.next_event()?.is_some() {
            events += 1;
        }
        span.record(|args| args.events = Some(events));
        dec.finish()
    }

    /// Iterates over the captured stream through the validating decoder,
    /// yielding `Err` (and then ending) at the first malformation. The
    /// final item also covers end-of-stream checks (unclosed scopes,
    /// trailing bytes).
    pub fn try_iter(&self) -> CheckedIter<'_> {
        CheckedIter {
            dec: Decoder::new(self),
            done: false,
        }
    }

    /// Exports the encoded columns as a self-contained [`ExportedTrace`] —
    /// the portable image a trace store persists and ships across process
    /// boundaries. The image carries the raw columns and declared counts
    /// only (no capture-side checkpoints); [`import`](Self::import)
    /// regenerates the checkpoints, so a round trip costs one forward scan
    /// and yields a buffer whose replay — full, segmented, or validating —
    /// is bit-identical to this one's.
    pub fn export(&self) -> ExportedTrace {
        ExportedTrace {
            events: self.events,
            accesses: self.accesses,
            scope_events: self.scope_events,
            ops: self.ops.clone(),
            addr_bytes: self.addr_bytes.clone(),
            ref_bytes: self.ref_bytes.clone(),
            size_bytes: self.size_bytes.clone(),
            scope_bytes: self.scope_bytes.clone(),
        }
    }

    /// Rebuilds a buffer from an [`ExportedTrace`] image of untrusted
    /// provenance. The whole stream is decoded through the validating
    /// decoder first (truncation, malformed varints, field ranges, scope
    /// balance, trailing bytes), the declared counts are cross-checked
    /// against what decoding observed, and the capture-side checkpoint
    /// index is regenerated by one forward scan so partitioned replay
    /// seeks as fast as on the original capture. `Ok` guarantees the
    /// result replays bit-identically to the buffer that produced the
    /// image.
    ///
    /// # Errors
    ///
    /// Returns the first malformation found; the image is rejected whole
    /// (no partially-imported buffer escapes).
    pub fn import(image: ExportedTrace) -> Result<TraceBuffer, DecodeError> {
        let mut buf = TraceBuffer {
            ops: image.ops,
            events: image.events,
            accesses: image.accesses,
            scope_events: image.scope_events,
            addr_bytes: image.addr_bytes,
            ref_bytes: image.ref_bytes,
            size_bytes: image.size_bytes,
            scope_bytes: image.scope_bytes,
            last_addr: 0,
            last_ref: 0,
            checkpoints: Vec::new(),
            open_scopes: Vec::new(),
        };
        if buf.accesses.saturating_add(buf.scope_events) != buf.events {
            return Err(DecodeError::CountMismatch {
                what: "event",
                declared: buf.events,
                actual: buf.accesses.saturating_add(buf.scope_events),
            });
        }
        // One fused validating scan: every event goes through the checked
        // decoder, and the checkpoint seek index is snapshotted at the
        // same boundaries capture would have placed it — no second pass.
        let mut span = obs::span(obs::Stage::Decode);
        let (checkpoints, accesses, last_addr, last_ref) = {
            let mut dec = Decoder::new(&buf)?;
            let mut checkpoints = Vec::new();
            loop {
                if dec.next > 0
                    && dec.next < buf.events
                    && dec.next.is_multiple_of(CHECKPOINT_EVERY)
                {
                    checkpoints.push(dec.checkpoint());
                }
                if dec.next_event()?.is_none() {
                    break;
                }
            }
            dec.finish()?;
            (checkpoints, dec.accesses, dec.addr, dec.r)
        };
        span.record(|args| args.events = Some(buf.events));
        if accesses != buf.accesses {
            return Err(DecodeError::CountMismatch {
                what: "access",
                declared: buf.accesses,
                actual: accesses,
            });
        }
        // Restore the encoder state a live capture of this stream would
        // have left, so further appends stay consistent. (Scope balance
        // was already proven, so the open-scope stack is empty.)
        buf.checkpoints = checkpoints;
        buf.last_addr = last_addr;
        buf.last_ref = last_ref;
        buf.open_scopes = Vec::new();
        Ok(buf)
    }

    /// Iterates over the captured stream as decoded [`Event`]s.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            buf: self,
            next: 0,
            addr: 0,
            r: 0,
            addr_pos: 0,
            ref_pos: 0,
            size_pos: 0,
            scope_pos: 0,
        }
    }
}

impl TraceSink for TraceBuffer {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        self.push_op(match kind {
            AccessKind::Load => OP_LOAD,
            AccessKind::Store => OP_STORE,
        });
        self.accesses += 1;
        let delta = addr.wrapping_sub(self.last_addr) as i64;
        put_varint(&mut self.addr_bytes, zigzag(delta));
        self.last_addr = addr;
        let rdelta = i64::from(r.0) - i64::from(self.last_ref);
        put_varint(&mut self.ref_bytes, zigzag(rdelta));
        self.last_ref = r.0;
        put_varint(&mut self.size_bytes, u64::from(size));
    }

    fn enter(&mut self, scope: ScopeId) {
        self.push_op(OP_ENTER);
        self.scope_events += 1;
        put_varint(&mut self.scope_bytes, u64::from(scope.0));
        self.open_scopes.push((scope.0, self.accesses));
    }

    fn exit(&mut self, scope: ScopeId) {
        self.push_op(OP_EXIT);
        self.scope_events += 1;
        put_varint(&mut self.scope_bytes, u64::from(scope.0));
        self.open_scopes.pop();
    }
}

/// The validating decoder behind [`TraceBuffer::try_replay`],
/// [`TraceBuffer::validate`] and [`TraceBuffer::try_iter`].
#[derive(Debug, Clone)]
struct Decoder<'b> {
    buf: &'b TraceBuffer,
    next: u64,
    addr: u64,
    r: u32,
    accesses: u64,
    addr_pos: usize,
    ref_pos: usize,
    size_pos: usize,
    scope_pos: usize,
    /// Open scopes with the access count at entry — the same shape the
    /// capture-side checkpoint index records, so [`import`] can snapshot
    /// checkpoints straight off the validating scan.
    ///
    /// [`import`]: TraceBuffer::import
    open_scopes: Vec<(u32, u64)>,
}

impl<'b> Decoder<'b> {
    fn new(buf: &'b TraceBuffer) -> Result<Decoder<'b>, DecodeError> {
        // The opcode column must hold exactly the declared number of 2-bit
        // lanes: ceil(events / 4) bytes.
        let needed = (buf.events as usize).div_ceil(4);
        if buf.ops.len() < needed {
            return Err(DecodeError::Truncated {
                column: Column::Ops,
                offset: buf.ops.len(),
                event: (buf.ops.len() as u64) * 4,
            });
        }
        if buf.ops.len() > needed {
            return Err(DecodeError::TrailingBytes {
                column: Column::Ops,
                consumed: needed,
                len: buf.ops.len(),
            });
        }
        Ok(Decoder {
            buf,
            next: 0,
            addr: 0,
            r: 0,
            accesses: 0,
            addr_pos: 0,
            ref_pos: 0,
            size_pos: 0,
            scope_pos: 0,
            open_scopes: Vec::new(),
        })
    }

    /// Decodes and validates the next event, or returns `None` at the end
    /// of the declared stream. End-of-stream invariants (scope balance,
    /// exact column consumption) are checked by [`finish`](Self::finish).
    fn next_event(&mut self) -> Result<Option<Event>, DecodeError> {
        if self.next >= self.buf.events {
            return Ok(None);
        }
        let i = self.next;
        self.next += 1;
        let op = (self.buf.ops[(i / 4) as usize] >> ((i % 4) * 2)) & 0b11;
        match op {
            OP_LOAD | OP_STORE => {
                let delta =
                    try_varint(&self.buf.addr_bytes, &mut self.addr_pos, Column::Addr, i)?;
                self.addr = self.addr.wrapping_add(unzigzag(delta) as u64);
                let rdelta =
                    try_varint(&self.buf.ref_bytes, &mut self.ref_pos, Column::Ref, i)?;
                let r = i64::from(self.r) + unzigzag(rdelta);
                if r < 0 || r > i64::from(u32::MAX) {
                    return Err(DecodeError::RefOutOfRange { event: i, value: r });
                }
                self.r = r as u32;
                let size =
                    try_varint(&self.buf.size_bytes, &mut self.size_pos, Column::Size, i)?;
                if size > u64::from(u32::MAX) {
                    return Err(DecodeError::SizeOutOfRange { event: i, value: size });
                }
                self.accesses += 1;
                Ok(Some(Event::Access {
                    r: RefId(self.r),
                    addr: self.addr,
                    size: size as u32,
                    kind: if op == OP_LOAD {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    },
                }))
            }
            _ => {
                let scope =
                    try_varint(&self.buf.scope_bytes, &mut self.scope_pos, Column::Scope, i)?;
                if scope > u64::from(u32::MAX) {
                    return Err(DecodeError::ScopeOutOfRange { event: i, value: scope });
                }
                let scope = scope as u32;
                if op == OP_ENTER {
                    self.open_scopes.push((scope, self.accesses));
                    Ok(Some(Event::Enter(ScopeId(scope))))
                } else {
                    match self.open_scopes.pop() {
                        Some((top, _)) if top == scope => {
                            Ok(Some(Event::Exit(ScopeId(scope))))
                        }
                        expected => Err(DecodeError::UnbalancedExit {
                            event: i,
                            scope,
                            expected: expected.map(|(s, _)| s),
                        }),
                    }
                }
            }
        }
    }

    /// Snapshots the decoder state at the current event boundary as a
    /// [`Checkpoint`] — identical to what capture would have recorded at
    /// this point in the stream.
    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            event: self.next,
            accesses: self.accesses,
            addr_pos: self.addr_pos,
            ref_pos: self.ref_pos,
            size_pos: self.size_pos,
            scope_pos: self.scope_pos,
            last_addr: self.addr,
            last_ref: self.r,
            open_scopes: self.open_scopes.clone(),
        }
    }

    /// End-of-stream checks: all scopes closed, every column consumed to
    /// its last byte.
    fn finish(&self) -> Result<(), DecodeError> {
        if !self.open_scopes.is_empty() {
            return Err(DecodeError::UnclosedScopes {
                depth: self.open_scopes.len(),
            });
        }
        for (column, consumed, len) in [
            (Column::Addr, self.addr_pos, self.buf.addr_bytes.len()),
            (Column::Ref, self.ref_pos, self.buf.ref_bytes.len()),
            (Column::Size, self.size_pos, self.buf.size_bytes.len()),
            (Column::Scope, self.scope_pos, self.buf.scope_bytes.len()),
        ] {
            if consumed != len {
                return Err(DecodeError::TrailingBytes { column, consumed, len });
            }
        }
        Ok(())
    }
}

/// Validating iterator returned by [`TraceBuffer::try_iter`]: yields each
/// decoded event, or the first [`DecodeError`] and then ends.
#[derive(Debug, Clone)]
pub struct CheckedIter<'b> {
    dec: Result<Decoder<'b>, DecodeError>,
    done: bool,
}

impl Iterator for CheckedIter<'_> {
    type Item = Result<Event, DecodeError>;

    fn next(&mut self) -> Option<Result<Event, DecodeError>> {
        if self.done {
            return None;
        }
        let dec = match &mut self.dec {
            Ok(dec) => dec,
            Err(e) => {
                self.done = true;
                return Some(Err(e.clone()));
            }
        };
        match dec.next_event() {
            Ok(Some(event)) => Some(Ok(event)),
            Ok(None) => {
                self.done = true;
                match dec.finish() {
                    Ok(()) => None,
                    Err(e) => Some(Err(e)),
                }
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Decoding iterator returned by [`TraceBuffer::iter`].
#[derive(Debug, Clone)]
pub struct TraceIter<'b> {
    buf: &'b TraceBuffer,
    next: u64,
    addr: u64,
    r: u32,
    addr_pos: usize,
    ref_pos: usize,
    size_pos: usize,
    scope_pos: usize,
}

impl Iterator for TraceIter<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.next >= self.buf.events {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let op = (self.buf.ops[(i / 4) as usize] >> ((i % 4) * 2)) & 0b11;
        Some(match op {
            OP_LOAD | OP_STORE => {
                self.addr = self
                    .addr
                    .wrapping_add(unzigzag(get_varint(&self.buf.addr_bytes, &mut self.addr_pos))
                        as u64);
                self.r = (i64::from(self.r)
                    + unzigzag(get_varint(&self.buf.ref_bytes, &mut self.ref_pos)))
                    as u32;
                let size = get_varint(&self.buf.size_bytes, &mut self.size_pos) as u32;
                Event::Access {
                    r: RefId(self.r),
                    addr: self.addr,
                    size,
                    kind: if op == OP_LOAD {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    },
                }
            }
            _ => {
                let scope = ScopeId(get_varint(&self.buf.scope_bytes, &mut self.scope_pos) as u32);
                if op == OP_ENTER {
                    Event::Enter(scope)
                } else {
                    Event::Exit(scope)
                }
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.buf.events - self.next) as usize;
        (left, Some(left))
    }
}

impl<'b> IntoIterator for &'b TraceBuffer {
    type Item = Event;
    type IntoIter = TraceIter<'b>;
    fn into_iter(self) -> TraceIter<'b> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VecSink;

    fn feed(sink: &mut impl TraceSink) {
        sink.enter(ScopeId(1));
        sink.access(RefId(0), 0x1000, 8, AccessKind::Load);
        sink.access(RefId(1), 0x1008, 8, AccessKind::Store);
        sink.enter(ScopeId(2));
        sink.access(RefId(0), 0x40_0000, 4, AccessKind::Load);
        sink.access(RefId(0), 0x08, 4, AccessKind::Load); // backwards delta
        sink.exit(ScopeId(2));
        sink.exit(ScopeId(1));
    }

    #[test]
    fn replay_reproduces_the_stream_exactly() {
        let mut buf = TraceBuffer::new();
        feed(&mut buf);
        let mut direct = VecSink::new();
        feed(&mut direct);
        let mut replayed = VecSink::new();
        buf.replay(&mut replayed);
        assert_eq!(direct, replayed);
        // And again: replay is repeatable.
        let mut again = VecSink::new();
        buf.replay(&mut again);
        assert_eq!(direct, again);
    }

    #[test]
    fn iter_matches_replay() {
        let mut buf = TraceBuffer::new();
        feed(&mut buf);
        let mut replayed = VecSink::new();
        buf.replay(&mut replayed);
        let from_iter: Vec<Event> = buf.iter().collect();
        assert_eq!(from_iter, replayed.events);
        assert_eq!(buf.iter().size_hint(), (8, Some(8)));
    }

    #[test]
    fn stats_report_counts_and_compression() {
        let mut buf = TraceBuffer::new();
        // A strided sweep: the representative best case for delta coding.
        buf.enter(ScopeId(1));
        for i in 0..10_000u64 {
            buf.access(RefId(0), 0x10_0000 + i * 8, 8, AccessKind::Load);
        }
        buf.exit(ScopeId(1));
        let s = buf.stats();
        assert_eq!(s.events, 10_002);
        assert_eq!(s.accesses, 10_000);
        assert_eq!(s.scope_events, 2);
        assert_eq!(s.raw_bytes, 10_002 * std::mem::size_of::<Event>() as u64);
        // 2-bit opcode + 1-byte addr delta + 1-byte ref delta + 1-byte size
        // ≈ 3.25 B/event versus 24 B raw.
        assert!(
            s.compression_ratio() > 6.0,
            "ratio {:.2} ({} B encoded)",
            s.compression_ratio(),
            s.encoded_bytes
        );
        assert!(!buf.is_empty());
        assert!(buf.stats().to_string().contains("accesses"));
    }

    #[test]
    fn empty_buffer_replays_nothing() {
        let buf = TraceBuffer::new();
        let mut sink = VecSink::new();
        buf.replay(&mut sink);
        assert!(sink.events.is_empty());
        assert!(buf.is_empty());
        assert_eq!(buf.stats().compression_ratio(), 1.0);
        assert!(buf.iter().next().is_none());
    }

    #[test]
    fn batches_split_on_scope_boundaries_and_batch_size() {
        /// Counts batch calls to verify batching behaviour.
        #[derive(Default)]
        struct Counting {
            batches: Vec<usize>,
            scopes: usize,
        }
        impl TraceSink for Counting {
            fn access(&mut self, _: RefId, _: u64, _: u32, _: AccessKind) {
                unreachable!("replay must go through access_batch");
            }
            fn access_batch(&mut self, batch: &[AccessRecord]) {
                self.batches.push(batch.len());
            }
            fn enter(&mut self, _: ScopeId) {
                self.scopes += 1;
            }
            fn exit(&mut self, _: ScopeId) {
                self.scopes += 1;
            }
        }

        let mut buf = TraceBuffer::new();
        buf.enter(ScopeId(1));
        for i in 0..300u64 {
            buf.access(RefId(0), i * 8, 8, AccessKind::Load);
        }
        buf.enter(ScopeId(2));
        for i in 0..10u64 {
            buf.access(RefId(0), i * 8, 8, AccessKind::Store);
        }
        buf.exit(ScopeId(2));
        buf.exit(ScopeId(1));

        let mut c = Counting::default();
        buf.replay(&mut c);
        assert_eq!(c.batches, vec![BATCH, 300 - BATCH, 10]);
        assert_eq!(c.scopes, 4);
    }

    /// A deterministic workload with nested scopes and varied strides,
    /// sized so several replay batches and (for `n >= CHECKPOINT_EVERY`)
    /// several checkpoints are produced.
    fn scoped_workload(n: u64) -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        buf.enter(ScopeId(1));
        for i in 0..n {
            if i % 97 == 0 {
                buf.enter(ScopeId(2 + (i % 3) as u32));
            }
            let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            buf.access(
                RefId((i % 5) as u32),
                0x1_0000 + (i * 24) % 4096 + (i / 11) * 64,
                8,
                kind,
            );
            if i % 97 == 96 {
                buf.exit(ScopeId(2 + ((i - 96) % 3) as u32));
            }
        }
        buf.exit(ScopeId(1));
        buf
    }

    #[test]
    fn segment_replay_concatenation_equals_full_replay() {
        let buf = scoped_workload(5_000);
        let mut full = VecSink::new();
        buf.replay(&mut full);
        for parts in [1usize, 2, 3, 8] {
            let states = buf.segment_states(parts);
            assert_eq!(states.len(), parts);
            assert_eq!(states[0], SegmentState::default());
            let mut stitched = VecSink::new();
            for (k, from) in states.iter().enumerate() {
                let to = states.get(k + 1).map_or(buf.events(), |s| s.event);
                buf.replay_segment(from, to, &mut stitched);
            }
            assert_eq!(stitched.events, full.events, "parts = {parts}");
        }
    }

    #[test]
    fn segment_states_report_scope_context_and_clocks() {
        let buf = scoped_workload(1_000);
        let states = buf.segment_states(4);
        // Every boundary sits inside ScopeId(1), entered at access clock 0.
        for s in &states[1..] {
            assert!(!s.scopes.is_empty());
            assert_eq!(s.scopes[0], (ScopeId(1), 0));
            assert!(s.accesses <= s.event);
            assert!(s.event <= buf.events());
        }
        // Boundaries are (nearly) evenly spaced and monotone.
        for w in states.windows(2) {
            assert!(w[0].event < w[1].event);
        }
    }

    #[test]
    fn checkpoints_match_pure_scan_states() {
        let buf = scoped_workload(2 * CHECKPOINT_EVERY + 1_234);
        assert!(
            buf.checkpoints.len() >= 2,
            "workload must cross multiple checkpoint intervals"
        );
        let mut unassisted = buf.clone();
        unassisted.checkpoints.clear();
        for parts in [2usize, 3, 8] {
            assert_eq!(
                buf.segment_states(parts),
                unassisted.segment_states(parts),
                "checkpoint fast-forward must be invisible (parts = {parts})"
            );
        }
        // And the stitched replay still equals the full replay.
        let mut full = VecSink::new();
        buf.replay(&mut full);
        let states = buf.segment_states(8);
        let mut stitched = VecSink::new();
        for (k, from) in states.iter().enumerate() {
            let to = states.get(k + 1).map_or(buf.events(), |s| s.event);
            buf.replay_segment(from, to, &mut stitched);
        }
        assert_eq!(stitched.events.len(), full.events.len());
        assert_eq!(stitched.events, full.events);
    }

    #[test]
    fn state_at_matches_segment_states_boundaries() {
        let buf = scoped_workload(2 * CHECKPOINT_EVERY + 1_234);
        for parts in [1usize, 2, 3, 8] {
            let states = buf.segment_states(parts);
            for s in &states {
                assert_eq!(buf.state_at(s.event), *s, "boundary at event {}", s.event);
            }
        }
        // The final state covers the whole stream, and targets past the
        // end clamp to it.
        let end = buf.state_at(buf.events());
        assert_eq!(end.event, buf.events());
        assert_eq!(end.accesses, buf.accesses());
        assert_eq!(buf.state_at(u64::MAX), end);
    }

    #[test]
    fn replay_advance_equals_full_replay_and_tracks_state() {
        let buf = scoped_workload(CHECKPOINT_EVERY + 4_321);
        let mut full = VecSink::new();
        buf.replay(&mut full);
        for chunk in [1u64, 97, 777, 10_000, u64::MAX] {
            let mut stitched = VecSink::new();
            let mut state = SegmentState::default();
            while state.event < buf.events() {
                let to = state.event.saturating_add(chunk);
                buf.replay_advance(&mut state, to, &mut stitched);
                assert_eq!(
                    state,
                    buf.state_at(to.min(buf.events())),
                    "state after advancing to {to} by chunks of {chunk}"
                );
            }
            assert_eq!(stitched.events, full.events, "chunk = {chunk}");
            // Advancing past the end is a no-op.
            let before = state.clone();
            buf.replay_advance(&mut state, u64::MAX, &mut stitched);
            assert_eq!(state, before);
            assert_eq!(stitched.events, full.events);
        }
    }

    #[test]
    fn forged_buffer_segment_states_fall_back_to_pure_scan() {
        use crate::fault::RawColumns;
        let buf = scoped_workload(3_000);
        let forged = RawColumns::of(&buf).build();
        assert!(forged.checkpoints.is_empty());
        let states = forged.segment_states(3);
        let mut honest = buf.clone();
        honest.checkpoints.clear();
        assert_eq!(states, honest.segment_states(3));
    }

    /// Like [`scoped_workload`] but scope-balanced, so the stream survives
    /// the validating decoder (`scoped_workload` can leave an inner scope
    /// open when `n` lands mid-group — harmless for unchecked replay,
    /// rightly rejected by [`TraceBuffer::import`]).
    fn balanced_workload(n: u64) -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        buf.enter(ScopeId(1));
        let mut open = None;
        for i in 0..n {
            if i % 97 == 0 {
                let s = ScopeId(2 + (i % 3) as u32);
                buf.enter(s);
                open = Some(s);
            }
            let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            buf.access(
                RefId((i % 5) as u32),
                0x1_0000 + (i * 24) % 4096 + (i / 11) * 64,
                8,
                kind,
            );
            if i % 97 == 96 {
                buf.exit(open.take().expect("group opened at i % 97 == 0"));
            }
        }
        if let Some(s) = open {
            buf.exit(s);
        }
        buf.exit(ScopeId(1));
        buf
    }

    #[test]
    fn export_import_round_trip_is_bit_identical() {
        let buf = balanced_workload(2 * CHECKPOINT_EVERY + 1_234);
        let imported = TraceBuffer::import(buf.export()).expect("clean image imports");
        // The regenerated checkpoint index matches capture's exactly, so
        // seeks behave identically — not just equivalently.
        assert_eq!(imported.checkpoints, buf.checkpoints);
        assert_eq!(imported.last_addr, buf.last_addr);
        assert_eq!(imported.last_ref, buf.last_ref);
        let mut original = VecSink::new();
        buf.replay(&mut original);
        let mut replayed = VecSink::new();
        imported.replay(&mut replayed);
        assert_eq!(original, replayed);
        for parts in [2usize, 3, 8] {
            assert_eq!(imported.segment_states(parts), buf.segment_states(parts));
        }
        // Empty buffers round-trip too.
        let empty = TraceBuffer::import(TraceBuffer::new().export()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn import_rejects_corrupt_and_inconsistent_images() {
        let buf = balanced_workload(3_000);
        // Declared access count disagreeing with the columns.
        let mut lying = buf.export();
        lying.accesses += 1;
        match TraceBuffer::import(lying).unwrap_err() {
            DecodeError::CountMismatch { what, declared, actual } => {
                assert_eq!(what, "event");
                assert_eq!(declared, buf.events());
                assert_eq!(actual, buf.events() + 1);
            }
            other => panic!("unexpected error: {other}"),
        }
        // Counts that sum correctly but still disagree with the stream.
        let mut swapped = buf.export();
        swapped.accesses -= 1;
        swapped.scope_events += 1;
        match TraceBuffer::import(swapped).unwrap_err() {
            DecodeError::CountMismatch { what, .. } => assert_eq!(what, "access"),
            other => panic!("unexpected error: {other}"),
        }
        // A truncated column is caught by the validating decoder.
        let mut torn = buf.export();
        torn.addr_bytes.truncate(torn.addr_bytes.len() / 2);
        assert!(matches!(
            TraceBuffer::import(torn).unwrap_err(),
            DecodeError::Truncated { .. } | DecodeError::VarintOverflow { .. }
        ));
    }

    #[test]
    fn varint_round_trips_across_magnitudes() {
        let mut bytes = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut bytes, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&bytes, &mut pos), v);
        }
        assert_eq!(pos, bytes.len());
        for v in [-1i64, 0, 1, i64::MIN, i64::MAX, -123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
