//! Deterministic fault injection for the capture/replay pipeline.
//!
//! The failure-path test suites need two ingredients this module provides:
//!
//! * **corrupted buffers** — a seeded [`Corruptor`] that bit-flips or
//!   truncates the encoded columns of a [`TraceBuffer`], plus
//!   [`truncations`] for exhaustively cutting a small golden buffer at
//!   every byte boundary, and [`RawColumns`] for forging specific
//!   malformed encodings by hand;
//! * **hostile sinks** — [`PanickingSink`] (panics with a string message
//!   after a configurable number of accesses) and [`FailingSink`] (panics
//!   with a non-string payload), used to prove that a consumer blowing up
//!   mid-replay neither poisons the shared buffer nor takes down sibling
//!   analysis threads;
//! * **torn writes** — [`CrashPoint`], an [`io::Write`] adapter that
//!   forwards a fixed byte budget and then fails, simulating a process
//!   killed at an arbitrary point while serializing a checkpoint; plus
//!   [`Corruptor`] methods over raw byte vectors ([`flip_bytes`]
//!   (Corruptor::flip_bytes), [`flip_header`](Corruptor::flip_header),
//!   [`truncate_bytes`](Corruptor::truncate_bytes),
//!   [`trailing_garbage`](Corruptor::trailing_garbage)) for mutating
//!   on-disk snapshot images the same seeded way buffers are mutated;
//! * **hostile requests** — [`splice_bytes`](Corruptor::splice_bytes) and
//!   [`garbage_line`](Corruptor::garbage_line) mutate daemon request
//!   bytes (overwriting rather than xoring, so non-UTF-8 garbage lands
//!   inside otherwise well-formed JSON lines) for the protocol fuzz
//!   suite.
//!
//! Everything is seeded through [`SplitMix64`], so a failing case is
//! reproducible from its seed alone. The module ships in the library (not
//! behind `cfg(test)`) so downstream crates' failure suites —
//! `reuselens-core`'s degradation tests, the workspace fault-tolerance
//! suite — can drive the same injections.

use crate::buffer::TraceBuffer;
use crate::decode::Column;
use crate::event::{AccessRecord, TraceSink};
use reuselens_ir::{AccessKind, RefId, ScopeId};
use reuselens_prng::SplitMix64;
use std::io;

/// The encoded columns of a [`TraceBuffer`], exposed for forging malformed
/// buffers in tests.
///
/// Round-trips through [`RawColumns::of`] / [`RawColumns::build`]; mutate
/// any field in between to craft a specific corruption (oversized varints,
/// inflated event counts, trailing bytes, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawColumns {
    /// Declared total event count.
    pub events: u64,
    /// Declared access count.
    pub accesses: u64,
    /// Declared scope-event count.
    pub scope_events: u64,
    /// Packed 2-bit opcodes.
    pub ops: Vec<u8>,
    /// Zigzag-varint address deltas.
    pub addrs: Vec<u8>,
    /// Zigzag-varint reference-id deltas.
    pub refs: Vec<u8>,
    /// Varint access sizes.
    pub sizes: Vec<u8>,
    /// Varint scope ids.
    pub scopes: Vec<u8>,
}

impl RawColumns {
    /// Decomposes a buffer into its raw columns.
    pub fn of(buf: &TraceBuffer) -> RawColumns {
        RawColumns {
            events: buf.events,
            accesses: buf.accesses,
            scope_events: buf.scope_events,
            ops: buf.ops.clone(),
            addrs: buf.addr_bytes.clone(),
            refs: buf.ref_bytes.clone(),
            sizes: buf.size_bytes.clone(),
            scopes: buf.scope_bytes.clone(),
        }
    }

    /// Reassembles a buffer — possibly malformed — from raw columns.
    pub fn build(self) -> TraceBuffer {
        TraceBuffer {
            ops: self.ops,
            events: self.events,
            accesses: self.accesses,
            scope_events: self.scope_events,
            addr_bytes: self.addrs,
            ref_bytes: self.refs,
            size_bytes: self.sizes,
            scope_bytes: self.scopes,
            last_addr: 0,
            last_ref: 0,
            checkpoints: Vec::new(),
            open_scopes: Vec::new(),
        }
    }

    fn column(&self, c: Column) -> &[u8] {
        match c {
            Column::Ops => &self.ops,
            Column::Addr => &self.addrs,
            Column::Ref => &self.refs,
            Column::Size => &self.sizes,
            Column::Scope => &self.scopes,
        }
    }

    fn column_mut(&mut self, c: Column) -> &mut Vec<u8> {
        match c {
            Column::Ops => &mut self.ops,
            Column::Addr => &mut self.addrs,
            Column::Ref => &mut self.refs,
            Column::Size => &mut self.sizes,
            Column::Scope => &mut self.scopes,
        }
    }
}

const COLUMNS: [Column; 5] = [
    Column::Ops,
    Column::Addr,
    Column::Ref,
    Column::Size,
    Column::Scope,
];

/// A seeded buffer corruptor. Every method is deterministic in the seed
/// and the call sequence, so any failure it provokes can be replayed.
#[derive(Debug, Clone)]
pub struct Corruptor {
    rng: SplitMix64,
}

impl Corruptor {
    /// Creates a corruptor from a seed.
    pub fn new(seed: u64) -> Corruptor {
        Corruptor {
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Picks a non-empty column, or `None` when every column is empty.
    fn pick_column(&mut self, raw: &RawColumns) -> Option<Column> {
        let nonempty: Vec<Column> = COLUMNS
            .into_iter()
            .filter(|&c| !raw.column(c).is_empty())
            .collect();
        if nonempty.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..nonempty.len() as u64) as usize;
        Some(nonempty[i])
    }

    /// Returns a copy of `buf` with one random bit flipped in one random
    /// non-empty encoded column. An empty buffer is returned unchanged.
    ///
    /// Note that a single bit flip does not always make the encoding
    /// invalid — flipping a size bit, say, yields a *different* valid
    /// stream. The guarantee under test is "never panics", not
    /// "always errors".
    pub fn bit_flip(&mut self, buf: &TraceBuffer) -> TraceBuffer {
        let mut raw = RawColumns::of(buf);
        if let Some(c) = self.pick_column(&raw) {
            let col = raw.column_mut(c);
            let byte = self.rng.gen_range(0..col.len() as u64) as usize;
            let bit = self.rng.gen_range(0..8) as u8;
            col[byte] ^= 1 << bit;
        }
        raw.build()
    }

    /// Returns a copy of `buf` with `n` random bit flips (possibly landing
    /// on the same bit, which un-flips it).
    pub fn bit_flips(&mut self, buf: &TraceBuffer, n: usize) -> TraceBuffer {
        let mut out = buf.clone();
        for _ in 0..n {
            out = self.bit_flip(&out);
        }
        out
    }

    /// Returns a copy of `buf` with one random non-empty column truncated
    /// to a strictly shorter random length. An empty buffer is returned
    /// unchanged. The result never validates (some event's bytes are gone).
    pub fn truncate(&mut self, buf: &TraceBuffer) -> TraceBuffer {
        let mut raw = RawColumns::of(buf);
        if let Some(c) = self.pick_column(&raw) {
            let col = raw.column_mut(c);
            let keep = self.rng.gen_range(0..col.len() as u64) as usize;
            col.truncate(keep);
        }
        raw.build()
    }

    /// Returns a copy of `buf` claiming `extra` more events than are
    /// encoded — a count/payload mismatch the validator must catch.
    pub fn inflate_events(&mut self, buf: &TraceBuffer, extra: u64) -> TraceBuffer {
        let mut raw = RawColumns::of(buf);
        raw.events += extra;
        raw.build()
    }

    /// Returns a copy of `bytes` with `n` random bit flips (possibly
    /// landing on the same bit, which un-flips it). Empty input is
    /// returned unchanged. The snapshot-file analogue of
    /// [`bit_flips`](Self::bit_flips).
    pub fn flip_bytes(&mut self, bytes: &[u8], n: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if out.is_empty() {
            return out;
        }
        for _ in 0..n {
            let byte = self.rng.gen_range(0..out.len() as u64) as usize;
            let bit = self.rng.gen_range(0..8) as u8;
            out[byte] ^= 1 << bit;
        }
        out
    }

    /// Returns a copy of `bytes` with one random bit flipped inside the
    /// first `prefix` bytes — aimed at a file's magic/version header,
    /// where any flip must be rejected outright rather than decoded.
    /// Input shorter than one byte is returned unchanged.
    pub fn flip_header(&mut self, bytes: &[u8], prefix: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        let span = prefix.min(out.len());
        if span == 0 {
            return out;
        }
        let byte = self.rng.gen_range(0..span as u64) as usize;
        let bit = self.rng.gen_range(0..8) as u8;
        out[byte] ^= 1 << bit;
        out
    }

    /// Returns a strictly shorter random prefix of `bytes` — a torn or
    /// mid-frame-truncated file. Empty input is returned unchanged.
    pub fn truncate_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let keep = self.rng.gen_range(0..bytes.len() as u64) as usize;
        bytes[..keep].to_vec()
    }

    /// Returns `bytes` with `n` random garbage bytes appended — a file a
    /// crashed writer (or a concatenating restore) left with trailing
    /// junk after an otherwise valid image.
    pub fn trailing_garbage(&mut self, bytes: &[u8], n: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        for _ in 0..n {
            out.push(self.rng.gen_range(0..256) as u8);
        }
        out
    }

    /// Returns a copy of `bytes` with `n` random bytes *overwritten* by
    /// random values (not xored) — unlike [`flip_bytes`](Self::flip_bytes)
    /// this can land arbitrary bytes, including ones that break UTF-8,
    /// inside an otherwise well-formed request line. Empty input is
    /// returned unchanged. The protocol-fuzz analogue of `bit_flips`.
    pub fn splice_bytes(&mut self, bytes: &[u8], n: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if out.is_empty() {
            return out;
        }
        for _ in 0..n {
            let byte = self.rng.gen_range(0..out.len() as u64) as usize;
            out[byte] = self.rng.gen_range(0..256) as u8;
        }
        out
    }

    /// Returns `len` uniformly random bytes — a request line that never
    /// was JSON. Useful as the zero-structure end of a protocol fuzz
    /// spectrum (valid request → spliced request → pure noise).
    pub fn garbage_line(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.rng.gen_range(0..256) as u8).collect()
    }
}

/// An [`io::Write`] adapter that forwards exactly `fail_after` bytes to
/// the wrapped writer and then fails every further write — the
/// deterministic stand-in for a process killed mid-serialization. Driving
/// `fail_after` across `0..=len` of a serialized image exercises a crash
/// at **every byte boundary** of the write.
///
/// The partial prefix *is* written (like a real torn write), so pointing
/// this at a file produces exactly the truncated artifacts a recovery
/// path must reject.
#[derive(Debug)]
pub struct CrashPoint<W: io::Write> {
    inner: W,
    remaining: u64,
    crashed: bool,
}

impl<W: io::Write> CrashPoint<W> {
    /// Wraps `inner`, allowing `fail_after` bytes through before failing.
    pub fn new(inner: W, fail_after: u64) -> CrashPoint<W> {
        CrashPoint {
            inner,
            remaining: fail_after,
            crashed: false,
        }
    }

    /// Picks the crash point uniformly in `0..len` from a seed — a
    /// reproducible random torn write over an image of `len` bytes.
    pub fn seeded(inner: W, seed: u64, len: u64) -> CrashPoint<W> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let fail_after = if len == 0 { 0 } else { rng.gen_range(0..len) };
        CrashPoint::new(inner, fail_after)
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Unwraps the inner writer (holding whatever prefix got through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> io::Write for CrashPoint<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let allowed = (self.remaining).min(buf.len() as u64) as usize;
        if allowed > 0 {
            let written = self.inner.write(&buf[..allowed])?;
            self.remaining -= written as u64;
            return Ok(written);
        }
        if buf.is_empty() {
            return Ok(0);
        }
        self.crashed = true;
        Err(io::Error::other("injected crash point"))
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Every proper truncation of every non-empty column of `buf`: for a
/// column of `n` bytes, the copies keeping `0..n` bytes. Exhaustive over a
/// small golden buffer, this covers truncation at every byte boundary.
/// Each returned copy fails validation by construction.
pub fn truncations(buf: &TraceBuffer) -> Vec<TraceBuffer> {
    let base = RawColumns::of(buf);
    let mut out = Vec::new();
    for c in COLUMNS {
        for keep in 0..base.column(c).len() {
            let mut raw = base.clone();
            raw.column_mut(c).truncate(keep);
            out.push(raw.build());
        }
    }
    out
}

/// A sink that panics (with a string message) once it has seen more than
/// `fail_after` accesses. `fail_after == 0` panics on the first access.
#[derive(Debug, Clone, Default)]
pub struct PanickingSink {
    /// Accesses to accept before panicking.
    pub fail_after: u64,
    seen: u64,
}

impl PanickingSink {
    /// Creates a sink that accepts `fail_after` accesses, then panics.
    pub fn new(fail_after: u64) -> PanickingSink {
        PanickingSink {
            fail_after,
            seen: 0,
        }
    }

    /// Accesses observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for PanickingSink {
    fn access(&mut self, _r: RefId, _addr: u64, _size: u32, _kind: AccessKind) {
        if self.seen >= self.fail_after {
            panic!("injected sink panic after {} accesses", self.seen);
        }
        self.seen += 1;
    }
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        for a in batch {
            self.access(a.r, a.addr, a.size, a.kind);
        }
    }
}

/// A sink whose first access panics with a **non-string payload**,
/// exercising the "opaque panic payload" branch of failure reporting
/// (`catch_unwind` callers cannot downcast it to a message).
#[derive(Debug, Clone, Copy, Default)]
pub struct FailingSink;

impl TraceSink for FailingSink {
    fn access(&mut self, _r: RefId, _addr: u64, _size: u32, _kind: AccessKind) {
        std::panic::panic_any(0xdead_beef_u64);
    }
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VecSink;

    fn golden() -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        buf.enter(ScopeId(1));
        for i in 0..40u64 {
            buf.access(RefId((i % 3) as u32), 0x1000 + i * 16, 8, AccessKind::Load);
        }
        buf.exit(ScopeId(1));
        buf
    }

    #[test]
    fn raw_columns_round_trip() {
        let buf = golden();
        let again = RawColumns::of(&buf).build();
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        buf.replay(&mut a);
        again.try_replay(&mut b).expect("round trip validates");
        assert_eq!(a, b);
    }

    #[test]
    fn corruptor_is_deterministic_in_the_seed() {
        let buf = golden();
        let a = Corruptor::new(7).bit_flips(&buf, 4);
        let b = Corruptor::new(7).bit_flips(&buf, 4);
        assert_eq!(RawColumns::of(&a), RawColumns::of(&b));
        let c = Corruptor::new(8).bit_flips(&buf, 4);
        assert_ne!(RawColumns::of(&a), RawColumns::of(&c));
    }

    #[test]
    fn truncate_and_inflate_fail_validation() {
        let buf = golden();
        let mut c = Corruptor::new(1);
        for _ in 0..20 {
            assert!(c.truncate(&buf).validate().is_err());
        }
        assert!(c.inflate_events(&buf, 3).validate().is_err());
    }

    #[test]
    fn empty_buffer_survives_corruption_attempts() {
        let empty = TraceBuffer::new();
        let mut c = Corruptor::new(5);
        assert!(c.bit_flip(&empty).validate().is_ok());
        assert!(c.truncate(&empty).validate().is_ok());
    }

    #[test]
    fn byte_vector_mutations_are_deterministic_and_shaped() {
        let image: Vec<u8> = (0..64u8).collect();
        let a = Corruptor::new(3).flip_bytes(&image, 4);
        let b = Corruptor::new(3).flip_bytes(&image, 4);
        assert_eq!(a, b);
        assert_ne!(a, image);
        assert_eq!(a.len(), image.len());

        let h = Corruptor::new(3).flip_header(&image, 8);
        assert_eq!(h.len(), image.len());
        assert_ne!(h[..8], image[..8], "flip must land in the header");
        assert_eq!(h[8..], image[8..]);

        let t = Corruptor::new(3).truncate_bytes(&image);
        assert!(t.len() < image.len());
        assert_eq!(t[..], image[..t.len()]);

        let g = Corruptor::new(3).trailing_garbage(&image, 5);
        assert_eq!(g.len(), image.len() + 5);
        assert_eq!(g[..image.len()], image[..]);

        // Degenerate inputs survive.
        assert!(Corruptor::new(1).flip_bytes(&[], 3).is_empty());
        assert!(Corruptor::new(1).flip_header(&[], 8).is_empty());
        assert!(Corruptor::new(1).truncate_bytes(&[]).is_empty());
    }

    #[test]
    fn request_mutators_are_deterministic_and_shaped() {
        let line = br#"{"kind":"capture","id":"t1","workload":"sweep3d"}"#;
        let a = Corruptor::new(11).splice_bytes(line, 6);
        let b = Corruptor::new(11).splice_bytes(line, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), line.len());
        assert_ne!(a, line.to_vec());
        assert!(Corruptor::new(11).splice_bytes(&[], 6).is_empty());

        let g = Corruptor::new(11).garbage_line(32);
        assert_eq!(g, Corruptor::new(11).garbage_line(32));
        assert_eq!(g.len(), 32);
        assert!(Corruptor::new(11).garbage_line(0).is_empty());
    }

    #[test]
    fn crash_point_writes_exact_prefix_then_fails() {
        use std::io::Write;
        let image: Vec<u8> = (0..32u8).collect();
        for fail_after in 0..=image.len() as u64 {
            let mut w = CrashPoint::new(Vec::new(), fail_after);
            let result = w.write_all(&image);
            if fail_after >= image.len() as u64 {
                result.expect("budget covers the image");
                assert!(!w.crashed());
            } else {
                assert!(result.is_err());
                assert!(w.crashed());
            }
            let written = w.into_inner();
            let kept = fail_after.min(image.len() as u64) as usize;
            assert_eq!(written[..], image[..kept]);
        }
        // Once crashed, later writes keep failing.
        let mut w = CrashPoint::new(Vec::new(), 1);
        assert!(w.write_all(&[1, 2]).is_err());
        assert!(w.write_all(&[3]).is_err());
        assert_eq!(w.into_inner(), vec![1]);
    }

    #[test]
    fn seeded_crash_point_is_reproducible() {
        use std::io::Write;
        let image: Vec<u8> = (0..50u8).collect();
        let run = |seed: u64| {
            let mut w = CrashPoint::seeded(Vec::new(), seed, image.len() as u64);
            let _ = w.write_all(&image);
            w.into_inner().len()
        };
        assert_eq!(run(9), run(9));
        let distinct: std::collections::HashSet<usize> = (0..32).map(run).collect();
        assert!(distinct.len() > 4, "seeds must spread the crash point");
    }

    #[test]
    fn panicking_sink_counts_then_panics() {
        let buf = golden();
        let mut ok = PanickingSink::new(1000);
        buf.replay(&mut ok);
        assert_eq!(ok.seen(), 40);
        let hit = std::panic::catch_unwind(|| {
            let mut s = PanickingSink::new(5);
            buf.replay(&mut s);
        });
        assert!(hit.is_err());
    }
}
