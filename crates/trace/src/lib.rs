//! # reuselens-trace — deterministic trace execution
//!
//! Interprets a [`reuselens_ir::Program`] and emits the instrumentation
//! event stream the paper's binary rewriter would produce: one event per
//! memory access (reference id, virtual address, width, load/store) and one
//! per routine/loop entry and exit.
//!
//! Analyzers implement [`TraceSink`] and observe events online, or capture
//! the stream once into a compact [`TraceBuffer`] and replay it many times
//! (per block granularity, per cache configuration) without re-interpreting
//! the program.
//!
//! # Examples
//!
//! ```
//! use reuselens_ir::ProgramBuilder;
//! use reuselens_trace::{Executor, VecSink};
//!
//! let mut p = ProgramBuilder::new("demo");
//! let a = p.array("a", 8, &[8, 8]);
//! p.routine("main", |r| {
//!     r.for_("j", 0, 7, |r, j| {
//!         r.for_("i", 0, 7, |r, i| {
//!             r.store(a, vec![i.into(), j.into()]);
//!         });
//!     });
//! });
//! let prog = p.finish();
//! let mut sink = VecSink::new();
//! let report = Executor::new(&prog).run(&mut sink)?;
//! assert_eq!(report.stores, 64);
//! # Ok::<(), reuselens_trace::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod buffer;
mod decode;
mod event;
mod exec;
pub mod fault;

pub use buffer::{BufferStats, CheckedIter, ExportedTrace, SegmentState, TraceBuffer, TraceIter};
pub use decode::{Column, DecodeError};
pub use event::{AccessRecord, Event, NullSink, SoaBatch, TeeSink, TraceSink, VecSink};
pub use exec::{ExecError, ExecReport, Executor, LoopStats};
