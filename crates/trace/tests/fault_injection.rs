//! Decoder-hardening suite: no corrupted, truncated, or forged
//! [`TraceBuffer`] may panic the validating decoder — every malformed
//! input must surface as a structured [`DecodeError`], and every valid
//! input must replay bit-identically to the unchecked fast path.
//!
//! All corruption is seeded through the deterministic fault-injection
//! harness (`reuselens_trace::fault`), so any failure here reproduces
//! from the constants in this file.

use reuselens_trace::fault::{truncations, Corruptor, PanickingSink, RawColumns};
use reuselens_trace::{Column, DecodeError, TraceBuffer, TraceSink, VecSink};
use reuselens_ir::{AccessKind, RefId, ScopeId};
use reuselens_prng::SplitMix64;

/// A small golden buffer with every event kind: nested scopes, loads and
/// stores from several references, forward and backward address deltas.
fn golden() -> TraceBuffer {
    let mut buf = TraceBuffer::new();
    buf.enter(ScopeId(1));
    buf.enter(ScopeId(2));
    for i in 0..24u64 {
        let kind = if i % 3 == 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        // Alternate between two regions so address deltas change sign.
        let addr = if i % 2 == 0 {
            0x1_0000 + i * 8
        } else {
            0x9_0000 - i * 128
        };
        buf.access(RefId((i % 4) as u32), addr, 8, kind);
    }
    buf.exit(ScopeId(2));
    buf.enter(ScopeId(3));
    buf.access(RefId(0), 0x42, 4, AccessKind::Load);
    buf.exit(ScopeId(3));
    buf.exit(ScopeId(1));
    buf
}

/// A random balanced event stream, deterministic in the seed.
fn random_buffer(seed: u64, events: usize) -> TraceBuffer {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut buf = TraceBuffer::new();
    let mut open: Vec<u32> = Vec::new();
    for _ in 0..events {
        match rng.gen_range(0..10) {
            0 if open.len() < 8 => {
                let s = rng.gen_range(1..100) as u32;
                open.push(s);
                buf.enter(ScopeId(s));
            }
            1 if !open.is_empty() => {
                let s = open.pop().unwrap();
                buf.exit(ScopeId(s));
            }
            _ => {
                let r = RefId(rng.gen_range(0..16) as u32);
                let addr = rng.gen_range(0..1 << 40);
                let size = 1 << rng.gen_range(0..4);
                let kind = if rng.gen_range(0..2) == 0 {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                buf.access(r, addr, size as u32, kind);
            }
        }
    }
    while let Some(s) = open.pop() {
        buf.exit(ScopeId(s));
    }
    buf
}

/// Replays `buf` through `try_replay` and asserts the event stream equals
/// the unchecked fast path's.
fn assert_checked_matches_unchecked(buf: &TraceBuffer) {
    let mut fast = VecSink::new();
    buf.replay(&mut fast);
    let mut checked = VecSink::new();
    buf.try_replay(&mut checked)
        .expect("a buffer that replays must validate");
    assert_eq!(fast, checked);
}

#[test]
fn round_trip_property_over_random_streams() {
    for seed in 0..32u64 {
        let buf = random_buffer(0xfau64 << 32 | seed, 400);
        buf.validate().expect("captured stream validates");
        assert_checked_matches_unchecked(&buf);
    }
}

#[test]
fn golden_buffer_round_trips() {
    let buf = golden();
    buf.validate().unwrap();
    assert_checked_matches_unchecked(&buf);
}

/// Truncation at *every* byte boundary of *every* column: always a
/// structured error, never a panic, and the sink only ever observes a
/// valid prefix of the original stream.
#[test]
fn every_truncation_errors_and_never_panics() {
    let buf = golden();
    let mut full = VecSink::new();
    buf.replay(&mut full);
    let cases = truncations(&buf);
    assert!(!cases.is_empty());
    for (i, cut) in cases.iter().enumerate() {
        assert!(cut.validate().is_err(), "truncation case {i} validated");
        let mut sink = VecSink::new();
        let err = cut.try_replay(&mut sink);
        assert!(err.is_err(), "truncation case {i} replayed");
        assert!(
            sink.events.len() <= full.events.len()
                && sink.events == full.events[..sink.events.len()],
            "truncation case {i} fed the sink a non-prefix"
        );
    }
}

/// Seeded single-bit flips: the decoder must never panic. A flip may
/// still yield a *different valid* stream (e.g. in a size byte), so the
/// assertion is "validates cleanly or errors cleanly", plus agreement
/// between `validate` and `try_replay`.
#[test]
fn seeded_bit_flips_never_panic() {
    let buf = golden();
    let mut corr = Corruptor::new(0x0b17_f11b);
    for case in 0..500 {
        let flipped = corr.bit_flip(&buf);
        let verdict = flipped.validate();
        let mut sink = VecSink::new();
        let replay_verdict = flipped.try_replay(&mut sink);
        assert_eq!(
            verdict.is_ok(),
            replay_verdict.is_ok(),
            "case {case}: validate and try_replay disagree"
        );
    }
}

/// Multi-bit flips over random buffers — denser corruption, same
/// guarantee.
#[test]
fn multi_bit_flips_on_random_buffers_never_panic() {
    for seed in 0..8u64 {
        let buf = random_buffer(seed, 300);
        let mut corr = Corruptor::new(seed ^ 0xdead);
        for n in 1..6 {
            let mangled = corr.bit_flips(&buf, n * 3);
            let _ = mangled.validate();
            let _ = mangled.try_replay(&mut VecSink::new());
        }
    }
}

#[test]
fn random_truncations_always_error() {
    let buf = random_buffer(99, 500);
    let mut corr = Corruptor::new(7);
    for _ in 0..50 {
        let cut = corr.truncate(&buf);
        assert!(cut.validate().is_err());
    }
}

/// Claiming more events than are encoded is a count/payload mismatch the
/// validator reports as truncation of the opcode column.
#[test]
fn inflated_event_count_is_rejected() {
    let buf = golden();
    let mut corr = Corruptor::new(3);
    for extra in [1u64, 4, 1000] {
        let inflated = corr.inflate_events(&buf, extra);
        let err = inflated.validate().unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::Truncated { .. } | DecodeError::TrailingBytes { .. }
            ),
            "unexpected error for {extra} phantom events: {err}"
        );
    }
}

/// A forged overlong varint (11 continuation bytes) in the address column.
#[test]
fn malformed_varint_is_rejected_with_column_and_offset() {
    let mut raw = RawColumns::of(&golden());
    raw.addrs = vec![0xff; 11];
    let err = raw.build().validate().unwrap_err();
    match err {
        DecodeError::VarintOverflow { column, offset, .. }
        | DecodeError::Truncated { column, offset, .. } => {
            assert_eq!(column, Column::Addr);
            assert!(offset <= 11);
        }
        other => panic!("unexpected error: {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("address"), "diagnostic lacks column: {msg}");
}

/// A varint that would overflow u64 (10th byte with high payload bits).
#[test]
fn varint_overflowing_u64_is_rejected() {
    let mut raw = RawColumns::of(&golden());
    // 9 continuation bytes then a final byte with payload > 1: decodes to
    // more than 64 bits.
    let mut bytes = vec![0x80u8; 9];
    bytes.push(0x7f);
    raw.sizes = bytes;
    let err = raw.build().validate().unwrap_err();
    assert!(
        matches!(err, DecodeError::VarintOverflow { column: Column::Size, .. }),
        "unexpected: {err}"
    );
}

/// Unbalanced scope events forged by hand: an exit for a scope that was
/// never entered, and an enter that is never closed.
#[test]
fn unbalanced_scopes_are_rejected() {
    let mut buf = TraceBuffer::new();
    buf.enter(ScopeId(1));
    buf.access(RefId(0), 0x100, 8, AccessKind::Load);
    buf.exit(ScopeId(2)); // mismatched
    buf.exit(ScopeId(1));
    let err = buf.validate().unwrap_err();
    assert!(
        matches!(err, DecodeError::UnbalancedExit { scope: 2, .. }),
        "unexpected: {err}"
    );

    let mut buf = TraceBuffer::new();
    buf.enter(ScopeId(1));
    buf.enter(ScopeId(2));
    buf.exit(ScopeId(2));
    let err = buf.validate().unwrap_err();
    assert!(
        matches!(err, DecodeError::UnclosedScopes { depth: 1 }),
        "unexpected: {err}"
    );
}

/// Bytes left over in a payload column after all declared events decoded.
#[test]
fn trailing_bytes_are_rejected() {
    for column in [Column::Addr, Column::Ref, Column::Size, Column::Scope] {
        let mut raw = RawColumns::of(&golden());
        match column {
            Column::Addr => raw.addrs.push(0x01),
            Column::Ref => raw.refs.push(0x01),
            Column::Size => raw.sizes.push(0x01),
            Column::Scope => raw.scopes.push(0x01),
            Column::Ops => unreachable!(),
        }
        let err = raw.build().validate().unwrap_err();
        assert!(
            matches!(err, DecodeError::TrailingBytes { column: c, .. } if c == column),
            "column {column:?}: unexpected error {err}"
        );
    }
}

/// An empty buffer is trivially valid.
#[test]
fn empty_buffer_validates() {
    let buf = TraceBuffer::new();
    buf.validate().unwrap();
    let mut sink = VecSink::new();
    buf.try_replay(&mut sink).unwrap();
    assert!(sink.events.is_empty());
}

/// A sink that panics mid-replay does not poison the shared buffer: the
/// buffer replays cleanly afterwards (it is never mutated by replay).
#[test]
fn sink_panic_does_not_poison_the_buffer() {
    let buf = golden();
    let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut hostile = PanickingSink::new(5);
        buf.replay(&mut hostile);
    }));
    assert!(hit.is_err(), "hostile sink must have panicked");
    assert_checked_matches_unchecked(&buf);
    buf.validate().unwrap();
}

/// `try_iter` yields the same events as `replay` and reports errors at
/// the failing event rather than panicking.
#[test]
fn checked_iterator_matches_and_reports_position() {
    let buf = golden();
    let mut fast = VecSink::new();
    buf.replay(&mut fast);
    let collected: Vec<_> = buf.try_iter().map(|e| e.unwrap()).collect();
    assert_eq!(collected, fast.events);

    // Truncate the address column mid-stream: iteration must stop with an
    // error naming the address column, after yielding a valid prefix.
    let mut raw = RawColumns::of(&buf);
    let keep = raw.addrs.len() / 2;
    raw.addrs.truncate(keep);
    let cut = raw.build();
    let mut seen = 0usize;
    let mut failed = None;
    for e in cut.try_iter() {
        match e {
            Ok(ev) => {
                assert_eq!(ev, fast.events[seen]);
                seen += 1;
            }
            Err(err) => {
                failed = Some(err);
                break;
            }
        }
    }
    let err = failed.expect("truncated stream must error");
    assert!(
        matches!(
            err,
            DecodeError::Truncated { column: Column::Addr, .. }
                | DecodeError::VarintOverflow { column: Column::Addr, .. }
        ),
        "unexpected: {err}"
    );
}

/// Error displays carry byte offsets and event indices for triage.
#[test]
fn error_display_carries_diagnostics() {
    let mut raw = RawColumns::of(&golden());
    raw.addrs.truncate(1);
    let err = raw.build().validate().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("address"), "{msg}");
    assert!(msg.contains("byte") || msg.contains("offset"), "{msg}");
}
