//! Array declarations: shapes, element sizes, and memory layouts.
//!
//! Arrays of records (the paper's `zion(7, mi)` array of seven-field
//! particle records) are modeled as an extra innermost dimension, so the
//! AoS→SoA transformation the paper applies is expressed as a dimension
//! interchange — exactly the view its static analysis takes.

use std::fmt;

/// Storage order of a multi-dimensional array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Fortran order: the *first* subscript is contiguous in memory.
    #[default]
    ColumnMajor,
    /// C order: the *last* subscript is contiguous in memory.
    RowMajor,
}

/// What an array stores, from the executor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArrayKind {
    /// Ordinary data; only its addresses matter.
    #[default]
    Data,
    /// Integer-valued index array whose *contents* the executor keeps so
    /// that [`crate::Expr::Load`] can read them (indirect addressing).
    Index,
}

/// A declared array: name, element size, extents, and layout.
///
/// The base address is assigned when the program is finalized; arrays are
/// laid out sequentially, page-aligned, so distinct arrays never share a
/// cache line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayDecl {
    pub(crate) name: String,
    pub(crate) elem_size: u32,
    pub(crate) dims: Vec<u64>,
    pub(crate) layout: Layout,
    pub(crate) kind: ArrayKind,
    pub(crate) base: u64,
}

impl ArrayDecl {
    /// The array's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// Extents per dimension (subscript order, not storage order).
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Storage order.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Data or index array.
    pub fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// Base virtual address (assigned at program finalization).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    /// True when the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() * self.elem_size as u64
    }

    /// Linearizes subscripts into a flat element offset, honoring the
    /// layout. Returns `None` when any subscript is out of `0..extent`.
    ///
    /// # Examples
    ///
    /// ```
    /// use reuselens_ir::{ArrayDecl, Layout};
    ///
    /// let a = ArrayDecl::for_test("a", 8, &[4, 3], Layout::ColumnMajor);
    /// assert_eq!(a.flat_index(&[1, 2]), Some(9)); // 1 + 4*2
    /// assert_eq!(a.flat_index(&[4, 0]), None);
    /// ```
    pub fn flat_index(&self, indices: &[i64]) -> Option<u64> {
        if indices.len() != self.dims.len() {
            return None;
        }
        let mut flat: u64 = 0;
        match self.layout {
            Layout::ColumnMajor => {
                // first subscript fastest: i0 + d0*(i1 + d1*(i2 + ...))
                for (&idx, &dim) in indices.iter().zip(&self.dims).rev() {
                    if idx < 0 || idx as u64 >= dim {
                        return None;
                    }
                    flat = flat * dim + idx as u64;
                }
            }
            Layout::RowMajor => {
                // last subscript fastest
                for (&idx, &dim) in indices.iter().zip(&self.dims) {
                    if idx < 0 || idx as u64 >= dim {
                        return None;
                    }
                    flat = flat * dim + idx as u64;
                }
            }
        }
        Some(flat)
    }

    /// Virtual address of the element at a flat offset.
    pub fn address_of_flat(&self, flat: u64) -> u64 {
        self.base + flat * self.elem_size as u64
    }

    /// Virtual address of the element at the given subscripts, or `None`
    /// when out of bounds.
    pub fn address(&self, indices: &[i64]) -> Option<u64> {
        self.flat_index(indices).map(|f| self.address_of_flat(f))
    }

    /// Byte stride that a unit step in subscript `dim` produces.
    pub fn byte_stride_of_dim(&self, dim: usize) -> u64 {
        let mut stride = self.elem_size as u64;
        match self.layout {
            Layout::ColumnMajor => {
                for d in 0..dim {
                    stride *= self.dims[d];
                }
            }
            Layout::RowMajor => {
                for d in (dim + 1)..self.dims.len() {
                    stride *= self.dims[d];
                }
            }
        }
        stride
    }

    /// Constructs a standalone declaration for tests and doc examples,
    /// with base address 0.
    pub fn for_test(name: &str, elem_size: u32, dims: &[u64], layout: Layout) -> ArrayDecl {
        ArrayDecl {
            name: name.to_string(),
            elem_size,
            dims: dims.to_vec(),
            layout,
            kind: ArrayKind::Data,
            base: 0,
        }
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(
            f,
            ") : {}B {:?} @0x{:x}",
            self.elem_size, self.layout, self.base
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_linearization_matches_fortran() {
        // Fortran A(4,3): A(i,j) at i + 4*j.
        let a = ArrayDecl::for_test("a", 8, &[4, 3], Layout::ColumnMajor);
        assert_eq!(a.flat_index(&[0, 0]), Some(0));
        assert_eq!(a.flat_index(&[3, 0]), Some(3));
        assert_eq!(a.flat_index(&[0, 1]), Some(4));
        assert_eq!(a.flat_index(&[3, 2]), Some(11));
        assert_eq!(a.len(), 12);
        assert_eq!(a.size_bytes(), 96);
    }

    #[test]
    fn row_major_linearization_matches_c() {
        let a = ArrayDecl::for_test("a", 4, &[4, 3], Layout::RowMajor);
        assert_eq!(a.flat_index(&[0, 0]), Some(0));
        assert_eq!(a.flat_index(&[0, 2]), Some(2));
        assert_eq!(a.flat_index(&[1, 0]), Some(3));
        assert_eq!(a.flat_index(&[3, 2]), Some(11));
    }

    #[test]
    fn out_of_bounds_is_none() {
        let a = ArrayDecl::for_test("a", 8, &[4, 3], Layout::ColumnMajor);
        assert_eq!(a.flat_index(&[4, 0]), None);
        assert_eq!(a.flat_index(&[-1, 0]), None);
        assert_eq!(a.flat_index(&[0, 3]), None);
        assert_eq!(a.flat_index(&[0]), None);
    }

    #[test]
    fn byte_strides_per_dimension() {
        let a = ArrayDecl::for_test("a", 8, &[50, 60, 70], Layout::ColumnMajor);
        assert_eq!(a.byte_stride_of_dim(0), 8);
        assert_eq!(a.byte_stride_of_dim(1), 8 * 50);
        assert_eq!(a.byte_stride_of_dim(2), 8 * 50 * 60);
        let r = ArrayDecl::for_test("r", 8, &[50, 60, 70], Layout::RowMajor);
        assert_eq!(r.byte_stride_of_dim(2), 8);
        assert_eq!(r.byte_stride_of_dim(1), 8 * 70);
        assert_eq!(r.byte_stride_of_dim(0), 8 * 70 * 60);
    }

    #[test]
    fn addresses_offset_from_base() {
        let mut a = ArrayDecl::for_test("a", 8, &[4, 3], Layout::ColumnMajor);
        a.base = 0x1000;
        assert_eq!(a.address(&[1, 1]), Some(0x1000 + 5 * 8));
        assert_eq!(a.address(&[9, 9]), None);
    }

    #[test]
    fn display_mentions_shape() {
        let a = ArrayDecl::for_test("flux", 8, &[50, 50], Layout::ColumnMajor);
        assert!(a.to_string().starts_with("flux(50, 50)"));
    }
}
