//! Integer expressions and predicates over loop variables.
//!
//! Expressions are what binary analysis recovers from an optimized
//! executable: address computations built from induction variables,
//! constants, arithmetic, and values loaded from memory (indirection).
//! They are deliberately *integer only*; the trace executor does not model
//! floating-point values, only the addresses a program touches.

use crate::ids::{ArrayId, VarId};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An integer expression evaluated during trace execution.
///
/// # Examples
///
/// ```
/// use reuselens_ir::{Expr, VarId};
///
/// let i = Expr::var(VarId(0));
/// let e = i.clone() * 4 + 2;
/// assert_eq!(e.to_string(), "((var0 * 4) + 2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A compile-time constant.
    Const(i64),
    /// A scalar variable (loop induction variable, parameter, or temporary).
    Var(VarId),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Floor division (Euclidean, like Fortran integer division for
    /// non-negative operands).
    Div(Box<Expr>, Box<Expr>),
    /// Euclidean remainder.
    Mod(Box<Expr>, Box<Expr>),
    /// Minimum of two expressions.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of two expressions.
    Max(Box<Expr>, Box<Expr>),
    /// An integer value loaded from an index array at the given subscript
    /// expressions. This models indirect addressing (`a(ix(i))`).
    Load(ArrayId, Vec<Expr>),
}

impl Expr {
    /// Builds a variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Builds a constant.
    pub fn c(value: i64) -> Expr {
        Expr::Const(value)
    }

    /// Builds `min(self, other)`.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Min(Box::new(self), Box::new(other.into()))
    }

    /// Builds `max(self, other)`.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Max(Box::new(self), Box::new(other.into()))
    }

    /// Builds the floor-division `self / other`.
    #[allow(clippy::should_implement_trait)] // deliberate Fortran-style name
    pub fn div(self, other: impl Into<Expr>) -> Expr {
        Expr::Div(Box::new(self), Box::new(other.into()))
    }

    /// Builds the Euclidean remainder `self % other`.
    #[allow(clippy::should_implement_trait)] // deliberate Fortran-style name
    pub fn rem(self, other: impl Into<Expr>) -> Expr {
        Expr::Mod(Box::new(self), Box::new(other.into()))
    }

    /// Builds an indirect load of an integer from `array[indices]`.
    pub fn load(array: ArrayId, indices: Vec<Expr>) -> Expr {
        Expr::Load(array, indices)
    }

    /// Evaluates the expression against a context supplying variable values
    /// and index-array contents.
    ///
    /// # Panics
    ///
    /// Panics on division or remainder by zero, mirroring the trap the
    /// modeled program would take.
    pub fn eval<C: EvalCtx + ?Sized>(&self, ctx: &C) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => ctx.var(*v),
            Expr::Add(a, b) => a.eval(ctx).wrapping_add(b.eval(ctx)),
            Expr::Sub(a, b) => a.eval(ctx).wrapping_sub(b.eval(ctx)),
            Expr::Mul(a, b) => a.eval(ctx).wrapping_mul(b.eval(ctx)),
            Expr::Div(a, b) => a.eval(ctx).div_euclid(b.eval(ctx)),
            Expr::Mod(a, b) => a.eval(ctx).rem_euclid(b.eval(ctx)),
            Expr::Min(a, b) => a.eval(ctx).min(b.eval(ctx)),
            Expr::Max(a, b) => a.eval(ctx).max(b.eval(ctx)),
            Expr::Load(arr, idx) => {
                let values: Vec<i64> = idx.iter().map(|e| e.eval(ctx)).collect();
                ctx.load_index(*arr, &values)
            }
        }
    }

    /// True if the expression (transitively) contains an indirect load.
    pub fn has_load(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.has_load() || b.has_load(),
            Expr::Load(..) => true,
        }
    }

    /// Collects every variable the expression mentions (including inside
    /// indirect-load subscripts) into `out`, deduplicated.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Load(_, idx) => {
                for e in idx {
                    e.collect_vars(out);
                }
            }
        }
    }

    /// Rewrites the expression, replacing each `Var(v)` for which `lookup`
    /// returns an expression with (a clone of) that expression. Variables
    /// with no binding are left in place. Substitution is *not* recursive:
    /// the replacement expression is inserted as-is, so callers that keep an
    /// environment of scalar bindings should store already-substituted
    /// expressions in it.
    pub fn substitute_vars<F>(&self, lookup: &F) -> Expr
    where
        F: Fn(VarId) -> Option<Expr>,
    {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Var(v) => lookup(*v).unwrap_or(Expr::Var(*v)),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Mod(a, b) => Expr::Mod(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Min(a, b) => Expr::Min(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Max(a, b) => Expr::Max(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Expr::Load(arr, idx) => Expr::Load(
                *arr,
                idx.iter().map(|e| e.substitute_vars(lookup)).collect(),
            ),
        }
    }

    /// Collects every index array the expression loads from.
    pub fn collect_loads(&self, out: &mut Vec<ArrayId>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Load(arr, idx) => {
                if !out.contains(arr) {
                    out.push(*arr);
                }
                for e in idx {
                    e.collect_loads(out);
                }
            }
        }
    }
}

/// Supplies variable values and index-array contents to [`Expr::eval`].
pub trait EvalCtx {
    /// Current value of a scalar variable.
    fn var(&self, v: VarId) -> i64;
    /// Value stored in an index array at the given (already evaluated)
    /// subscript values.
    fn load_index(&self, array: ArrayId, indices: &[i64]) -> i64;
}

impl From<i64> for Expr {
    fn from(c: i64) -> Expr {
        Expr::Const(c)
    }
}

impl From<i32> for Expr {
    fn from(c: i32) -> Expr {
        Expr::Const(c as i64)
    }
}

impl From<u64> for Expr {
    fn from(c: u64) -> Expr {
        Expr::Const(c as i64)
    }
}

impl From<usize> for Expr {
    fn from(c: usize) -> Expr {
        Expr::Const(c as i64)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Expr {
        Expr::Var(v)
    }
}

macro_rules! expr_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl<R: Into<Expr>> $trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

expr_binop!(Add, add, Add);
expr_binop!(Sub, sub, Sub);
expr_binop!(Mul, mul, Mul);

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Sub(Box::new(Expr::Const(0)), Box::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Load(arr, idx) => {
                write!(f, "{arr}[")?;
                for (k, e) in idx.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A boolean predicate guarding a block of statements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Always true.
    True,
    /// `a <= b`.
    Le(Expr, Expr),
    /// `a < b`.
    Lt(Expr, Expr),
    /// `a >= b`.
    Ge(Expr, Expr),
    /// `a > b`.
    Gt(Expr, Expr),
    /// `a == b`.
    Eq(Expr, Expr),
    /// `a != b`.
    Ne(Expr, Expr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Evaluates the predicate under `ctx`.
    pub fn eval<C: EvalCtx + ?Sized>(&self, ctx: &C) -> bool {
        match self {
            Pred::True => true,
            Pred::Le(a, b) => a.eval(ctx) <= b.eval(ctx),
            Pred::Lt(a, b) => a.eval(ctx) < b.eval(ctx),
            Pred::Ge(a, b) => a.eval(ctx) >= b.eval(ctx),
            Pred::Gt(a, b) => a.eval(ctx) > b.eval(ctx),
            Pred::Eq(a, b) => a.eval(ctx) == b.eval(ctx),
            Pred::Ne(a, b) => a.eval(ctx) != b.eval(ctx),
            Pred::And(a, b) => a.eval(ctx) && b.eval(ctx),
            Pred::Or(a, b) => a.eval(ctx) || b.eval(ctx),
            Pred::Not(a) => !a.eval(ctx),
        }
    }

    /// Builds `self && other`.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Builds `self || other`.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Rewrites every expression inside the predicate with
    /// [`Expr::substitute_vars`].
    pub fn substitute_vars<F>(&self, lookup: &F) -> Pred
    where
        F: Fn(VarId) -> Option<Expr>,
    {
        match self {
            Pred::True => Pred::True,
            Pred::Le(a, b) => Pred::Le(a.substitute_vars(lookup), b.substitute_vars(lookup)),
            Pred::Lt(a, b) => Pred::Lt(a.substitute_vars(lookup), b.substitute_vars(lookup)),
            Pred::Ge(a, b) => Pred::Ge(a.substitute_vars(lookup), b.substitute_vars(lookup)),
            Pred::Gt(a, b) => Pred::Gt(a.substitute_vars(lookup), b.substitute_vars(lookup)),
            Pred::Eq(a, b) => Pred::Eq(a.substitute_vars(lookup), b.substitute_vars(lookup)),
            Pred::Ne(a, b) => Pred::Ne(a.substitute_vars(lookup), b.substitute_vars(lookup)),
            Pred::And(a, b) => Pred::And(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Pred::Or(a, b) => Pred::Or(
                Box::new(a.substitute_vars(lookup)),
                Box::new(b.substitute_vars(lookup)),
            ),
            Pred::Not(a) => Pred::Not(Box::new(a.substitute_vars(lookup))),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Le(a, b) => write!(f, "{a} <= {b}"),
            Pred::Lt(a, b) => write!(f, "{a} < {b}"),
            Pred::Ge(a, b) => write!(f, "{a} >= {b}"),
            Pred::Gt(a, b) => write!(f, "{a} > {b}"),
            Pred::Eq(a, b) => write!(f, "{a} == {b}"),
            Pred::Ne(a, b) => write!(f, "{a} != {b}"),
            Pred::And(a, b) => write!(f, "({a}) && ({b})"),
            Pred::Or(a, b) => write!(f, "({a}) || ({b})"),
            Pred::Not(a) => write!(f, "!({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Ctx {
        vars: HashMap<VarId, i64>,
        table: Vec<i64>,
    }

    impl EvalCtx for Ctx {
        fn var(&self, v: VarId) -> i64 {
            self.vars[&v]
        }
        fn load_index(&self, _array: ArrayId, indices: &[i64]) -> i64 {
            self.table[indices[0] as usize]
        }
    }

    fn ctx() -> Ctx {
        let mut vars = HashMap::new();
        vars.insert(VarId(0), 5);
        vars.insert(VarId(1), -3);
        Ctx {
            vars,
            table: vec![10, 20, 30, 40],
        }
    }

    #[test]
    fn arithmetic_evaluates() {
        let c = ctx();
        let i = Expr::var(VarId(0));
        let j = Expr::var(VarId(1));
        assert_eq!((i.clone() + j.clone()).eval(&c), 2);
        assert_eq!((i.clone() - j.clone()).eval(&c), 8);
        assert_eq!((i.clone() * 3).eval(&c), 15);
        assert_eq!((-i.clone()).eval(&c), -5);
        assert_eq!(i.clone().min(j.clone()).eval(&c), -3);
        assert_eq!(i.clone().max(j.clone()).eval(&c), 5);
        assert_eq!(i.clone().div(2).eval(&c), 2);
        assert_eq!(i.rem(3).eval(&c), 2);
    }

    #[test]
    fn division_is_euclidean() {
        let c = ctx();
        let j = Expr::var(VarId(1)); // -3
        assert_eq!(j.clone().div(2).eval(&c), -2);
        assert_eq!(j.rem(2).eval(&c), 1);
    }

    #[test]
    fn indirect_load_evaluates() {
        let c = ctx();
        let e = Expr::load(ArrayId(0), vec![Expr::var(VarId(0)) - 3]);
        assert_eq!(e.eval(&c), 30);
        assert!(e.has_load());
        assert!(!Expr::var(VarId(0)).has_load());
    }

    #[test]
    fn collect_vars_dedups_and_descends_into_loads() {
        let e = Expr::load(ArrayId(0), vec![Expr::var(VarId(0)) + Expr::var(VarId(0))])
            + Expr::var(VarId(1));
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(0), VarId(1)]);
        let mut loads = Vec::new();
        e.collect_loads(&mut loads);
        assert_eq!(loads, vec![ArrayId(0)]);
    }

    #[test]
    fn predicates_evaluate() {
        let c = ctx();
        let i = Expr::var(VarId(0));
        assert!(Pred::Le(i.clone(), Expr::c(5)).eval(&c));
        assert!(!Pred::Lt(i.clone(), Expr::c(5)).eval(&c));
        assert!(Pred::Ge(i.clone(), Expr::c(5)).eval(&c));
        assert!(Pred::Gt(i.clone(), Expr::c(4)).eval(&c));
        assert!(Pred::Eq(i.clone(), Expr::c(5)).eval(&c));
        assert!(Pred::Ne(i.clone(), Expr::c(4)).eval(&c));
        assert!(Pred::Eq(i.clone(), Expr::c(5))
            .and(Pred::True)
            .eval(&c));
        assert!(Pred::Eq(i.clone(), Expr::c(9))
            .or(Pred::True)
            .eval(&c));
        assert!(Pred::Not(Box::new(Pred::Eq(i, Expr::c(9)))).eval(&c));
    }

    #[test]
    fn substitute_vars_rewrites_bound_vars_only() {
        let c = ctx();
        // e = v2 * 8 where v2 is unbound in the ctx; substitute v2 := v0 + 1.
        let e = Expr::var(VarId(2)) * 8;
        let s = e.substitute_vars(&|v| (v == VarId(2)).then(|| Expr::var(VarId(0)) + 1));
        assert_eq!(s.eval(&c), 48);
        // Unbound vars survive untouched, including inside load subscripts.
        let l = Expr::load(ArrayId(0), vec![Expr::var(VarId(2))]);
        let ls = l.substitute_vars(&|v| (v == VarId(2)).then(|| Expr::c(1)));
        assert_eq!(ls.eval(&c), 20);
        let keep = Expr::var(VarId(1)).substitute_vars(&|_| None);
        assert_eq!(keep, Expr::var(VarId(1)));
        // Predicates rewrite both sides.
        let p = Pred::Lt(Expr::var(VarId(2)), Expr::c(3))
            .substitute_vars(&|v| (v == VarId(2)).then(|| Expr::c(2)));
        assert!(p.eval(&c));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::var(VarId(0)) * 8 + 16;
        assert_eq!(e.to_string(), "((var0 * 8) + 16)");
        let p = Pred::Lt(Expr::var(VarId(0)), Expr::c(10));
        assert_eq!(p.to_string(), "var0 < 10");
        let l = Expr::load(ArrayId(2), vec![Expr::c(1), Expr::c(2)]);
        assert_eq!(l.to_string(), "arr2[1, 2]");
    }
}
