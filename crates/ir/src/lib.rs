//! # reuselens-ir — loop-nest program IR
//!
//! This crate plays the role that *binary analysis of fully optimized
//! executables* plays in the ISPASS 2008 paper this project reproduces:
//! it provides a faithful, analyzable representation of a program's memory
//! behaviour — arrays with concrete layouts and base addresses, loads and
//! stores with symbolic subscript expressions, and a static scope tree of
//! routines and loops.
//!
//! Downstream crates consume this IR two ways:
//!
//! * `reuselens-trace` *executes* it, producing the event stream (memory
//!   accesses + scope entry/exit) that the paper's run-time instrumentation
//!   would emit;
//! * `reuselens-static` *analyzes* it, recovering the first-location and
//!   stride formulas the paper derives from use-def chains in machine code.
//!
//! # Examples
//!
//! Build the loop nest of the paper's Figure 1 (row-order traversal of
//! column-major arrays) and inspect its strides:
//!
//! ```
//! use reuselens_ir::{ProgramBuilder, Stride};
//!
//! let (n, m) = (100u64, 50u64);
//! let mut p = ProgramBuilder::new("fig1a");
//! let a = p.array("a", 8, &[n, m]); // column-major: first subscript contiguous
//! let b = p.array("b", 8, &[n, m]);
//! p.routine("main", |r| {
//!     r.for_("i", 0, (n - 1) as i64, |r, i| {
//!         r.for_("j", 0, (m - 1) as i64, |r, j| {
//!             r.load(b, vec![i.into(), j.into()]);
//!             r.load(a, vec![i.into(), j.into()]);
//!             r.store(a, vec![i.into(), j.into()]);
//!         });
//!     });
//! });
//! let prog = p.finish();
//! prog.validate()?;
//!
//! // The inner j loop walks the OUTER array dimension: byte stride 8*n.
//! let r0 = &prog.references()[0];
//! let offset = prog.byte_offset_expr(r0).unwrap();
//! let j = prog.loop_var(prog.scope_by_name("j").unwrap()).unwrap();
//! assert_eq!(offset.coeff(j), 8 * n as i64);
//! # Ok::<(), reuselens_ir::ValidateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod array;
mod builder;
mod expr;
mod ids;
mod pretty;
mod program;
mod stmt;

pub use affine::{affine_form, stride_wrt, Affine, Stride};
pub use array::{ArrayDecl, ArrayKind, Layout};
pub use builder::{BodyBuilder, ProgramBuilder};
pub use expr::{EvalCtx, Expr, Pred};
pub use ids::{ArrayId, RefId, RoutineId, ScopeId, VarId};
pub use program::{Ancestors, Program, Routine, ScopeInfo, ScopeKind, ValidateError};
pub use stmt::{walk_stmts, AccessKind, Loop, Reference, Stmt};
