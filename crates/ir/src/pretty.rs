//! Source-like pretty printing of programs (useful in reports and when
//! debugging workload models).

use crate::program::Program;
use crate::stmt::{AccessKind, Stmt};
use std::fmt;

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.name)?;
        for a in &self.arrays {
            writeln!(f, "  {a}")?;
        }
        for rtn in &self.routines {
            writeln!(f, "  routine {} {{", rtn.name())?;
            print_body(self, rtn.body(), 2, f)?;
            writeln!(f, "  }}")?;
        }
        writeln!(f, "}}")
    }
}

fn print_body(
    p: &Program,
    body: &[Stmt],
    depth: usize,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let pad = "  ".repeat(depth);
    for stmt in body {
        match stmt {
            Stmt::Loop(l) => {
                writeln!(
                    f,
                    "{pad}do {} = {}, {}{} {{",
                    p.var_name(l.var()),
                    l.lower(),
                    l.upper(),
                    if l.step() == 1 {
                        String::new()
                    } else {
                        format!(", {}", l.step())
                    }
                )?;
                print_body(p, l.body(), depth + 1, f)?;
                writeln!(f, "{pad}}}")?;
            }
            Stmt::Access(id) => {
                let r = p.reference(*id);
                let verb = match r.kind() {
                    AccessKind::Load => "load",
                    AccessKind::Store => "store",
                };
                writeln!(f, "{pad}{verb} {}", r.label())?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                writeln!(f, "{pad}if {cond} {{")?;
                print_body(p, then_body, depth + 1, f)?;
                if !else_body.is_empty() {
                    writeln!(f, "{pad}}} else {{")?;
                    print_body(p, else_body, depth + 1, f)?;
                }
                writeln!(f, "{pad}}}")?;
            }
            Stmt::Assign { var, value } => {
                writeln!(f, "{pad}{} = {value}", p.var_name(*var))?;
            }
            Stmt::Call(rtn) => {
                writeln!(f, "{pad}call {}", p.routine(*rtn).name())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::expr::Expr;

    #[test]
    fn pretty_print_contains_structure() {
        let mut p = ProgramBuilder::new("demo");
        let a = p.array("a", 8, &[8]);
        p.routine("main", |r| {
            r.for_("i", 0, 7, |r, i| {
                r.load(a, vec![Expr::var(i)]);
            });
        });
        let text = p.finish().to_string();
        assert!(text.contains("program demo"));
        assert!(text.contains("routine main"));
        assert!(text.contains("do i = 0, 7"));
        assert!(text.contains("load a(var0)"));
    }
}
