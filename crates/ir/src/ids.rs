//! Newtype identifiers for program entities.
//!
//! Every entity in a [`crate::Program`] — arrays, memory references, scopes,
//! routines, and scalar variables — is identified by a small integer newtype.
//! The newtypes prevent accidentally indexing one table with another table's
//! id (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index, usable to index the owning table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies an array declaration within a [`crate::Program`].
    ArrayId,
    "arr"
);
id_type!(
    /// Identifies a static memory reference (a load or store site).
    RefId,
    "ref"
);
id_type!(
    /// Identifies a program scope (the program root, a routine, or a loop).
    ScopeId,
    "scope"
);
id_type!(
    /// Identifies a routine within a [`crate::Program`].
    RoutineId,
    "rtn"
);
id_type!(
    /// Identifies a scalar integer variable (loop induction variable,
    /// parameter, or assigned temporary).
    VarId,
    "var"
);

impl ScopeId {
    /// The program-root scope, parent of every routine scope.
    pub const ROOT: ScopeId = ScopeId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_tags() {
        assert_eq!(ArrayId(3).to_string(), "arr3");
        assert_eq!(RefId(0).to_string(), "ref0");
        assert_eq!(ScopeId::ROOT.to_string(), "scope0");
        assert_eq!(RoutineId(7).to_string(), "rtn7");
        assert_eq!(VarId(1).to_string(), "var1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ScopeId(1));
        set.insert(ScopeId(1));
        set.insert(ScopeId(2));
        assert_eq!(set.len(), 2);
        assert!(ScopeId(1) < ScopeId(2));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ArrayId(9).index(), 9);
        let u: usize = RoutineId(4).into();
        assert_eq!(u, 4);
    }
}
