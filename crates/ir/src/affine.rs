//! Affine-form recovery and per-loop stride classification.
//!
//! The paper's static analysis traces use-def chains in machine code to
//! build *symbolic formulas* for the first location a reference accesses and
//! for its *stride* with respect to each enclosing loop, flagging strides
//! that are irregular (change between iterations) or indirect (depend on a
//! loaded value). Our IR plays the role of the binary, so the same formulas
//! are recovered directly from [`Expr`] trees.

use crate::expr::Expr;
use crate::ids::VarId;
use std::fmt;

/// A multi-variable affine form `constant + Σ coeff·var`.
///
/// Terms are kept sorted by variable id with no zero coefficients, so two
/// equal forms compare equal structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    /// The constant term.
    pub constant: i64,
    /// `(variable, coefficient)` pairs, sorted by variable, coefficients
    /// nonzero.
    pub terms: Vec<(VarId, i64)>,
}

impl Affine {
    /// The affine form of a constant.
    pub fn constant(c: i64) -> Affine {
        Affine {
            constant: c,
            terms: Vec::new(),
        }
    }

    /// The affine form of a single variable.
    pub fn var(v: VarId) -> Affine {
        Affine {
            constant: 0,
            terms: vec![(v, 1)],
        }
    }

    /// Coefficient of `v` (zero when absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// True when the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds another form.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for &(v, c) in &other.terms {
            out.add_term(v, c);
        }
        out
    }

    /// Subtracts another form.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Multiplies every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            constant: self.constant * k,
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
        }
    }

    /// Evaluates the form with variable values supplied by `lookup`.
    pub fn eval(&self, mut lookup: impl FnMut(VarId) -> i64) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * lookup(v))
                .sum::<i64>()
    }

    /// Substitutes a constant value for `v`, folding it into the constant
    /// term.
    pub fn substitute(&self, v: VarId, value: i64) -> Affine {
        let mut out = Affine {
            constant: self.constant,
            terms: Vec::with_capacity(self.terms.len()),
        };
        for &(w, c) in &self.terms {
            if w == v {
                out.constant += c * value;
            } else {
                out.terms.push((w, c));
            }
        }
        out
    }

    fn add_term(&mut self, v: VarId, c: i64) {
        if c == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(pos) => {
                self.terms[pos].1 += c;
                if self.terms[pos].1 == 0 {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (v, c)),
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.constant)?;
        for &(v, c) in &self.terms {
            if c >= 0 {
                write!(f, " + {c}·{v}")?;
            } else {
                write!(f, " - {}·{v}", -c)?;
            }
        }
        Ok(())
    }
}

/// Computes the affine form of an expression, or `None` when the expression
/// is not affine (contains indirect loads, min/max, or non-constant
/// division/remainder/multiplication).
pub fn affine_form(expr: &Expr) -> Option<Affine> {
    match expr {
        Expr::Const(c) => Some(Affine::constant(*c)),
        Expr::Var(v) => Some(Affine::var(*v)),
        Expr::Add(a, b) => Some(affine_form(a)?.add(&affine_form(b)?)),
        Expr::Sub(a, b) => Some(affine_form(a)?.sub(&affine_form(b)?)),
        Expr::Mul(a, b) => {
            let fa = affine_form(a)?;
            let fb = affine_form(b)?;
            if fa.is_constant() {
                Some(fb.scale(fa.constant))
            } else if fb.is_constant() {
                Some(fa.scale(fb.constant))
            } else {
                None
            }
        }
        Expr::Div(a, b) | Expr::Mod(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
            let fa = affine_form(a)?;
            let fb = affine_form(b)?;
            if fa.is_constant() && fb.is_constant() {
                let (x, y) = (fa.constant, fb.constant);
                let folded = match expr {
                    Expr::Div(..) => x.div_euclid(y),
                    Expr::Mod(..) => x.rem_euclid(y),
                    Expr::Min(..) => x.min(y),
                    Expr::Max(..) => x.max(y),
                    _ => unreachable!(),
                };
                Some(Affine::constant(folded))
            } else {
                None
            }
        }
        Expr::Load(..) => None,
    }
}

/// Classification of how an expression changes as one loop variable steps.
///
/// Mirrors the paper's stride formulas: a constant stride, an *irregular*
/// stride (changes between iterations), or an *indirect* dependence (the
/// value accessed depends on data loaded from memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stride {
    /// The expression changes by exactly this many units per unit step of
    /// the variable (zero means invariant).
    Constant(i64),
    /// The expression depends on the variable non-affinely.
    Irregular,
    /// The expression depends on the variable through an indirect load.
    Indirect,
}

impl Stride {
    /// True for [`Stride::Constant`] with a nonzero value.
    pub fn is_nonzero_constant(self) -> bool {
        matches!(self, Stride::Constant(c) if c != 0)
    }

    /// Returns the constant stride value if this is a constant stride.
    pub fn constant(self) -> Option<i64> {
        match self {
            Stride::Constant(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Stride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stride::Constant(c) => write!(f, "{c}"),
            Stride::Irregular => write!(f, "irregular"),
            Stride::Indirect => write!(f, "indirect"),
        }
    }
}

/// Computes the stride of `expr` with respect to variable `v`.
///
/// Sub-expressions that do not mention `v` are treated as loop-invariant
/// symbolic constants, so `i*8 + ix[j]` has stride 8 with respect to `i`
/// and an [indirect](Stride::Indirect) stride with respect to `j`.
pub fn stride_wrt(expr: &Expr, v: VarId) -> Stride {
    classify(expr, v).stride
}

struct Class {
    /// Does the expression mention `v` at all?
    depends: bool,
    stride: Stride,
}

impl Class {
    fn invariant() -> Class {
        Class {
            depends: false,
            stride: Stride::Constant(0),
        }
    }
}

fn merge_worst(a: Stride, b: Stride) -> Stride {
    use Stride::*;
    match (a, b) {
        (Indirect, _) | (_, Indirect) => Indirect,
        (Irregular, _) | (_, Irregular) => Irregular,
        (Constant(x), Constant(y)) => Constant(x + y),
    }
}

fn classify(expr: &Expr, v: VarId) -> Class {
    match expr {
        Expr::Const(_) => Class::invariant(),
        Expr::Var(w) => Class {
            depends: *w == v,
            stride: Stride::Constant(if *w == v { 1 } else { 0 }),
        },
        Expr::Add(a, b) => {
            let (ca, cb) = (classify(a, v), classify(b, v));
            Class {
                depends: ca.depends || cb.depends,
                stride: merge_worst(ca.stride, cb.stride),
            }
        }
        Expr::Sub(a, b) => {
            let (ca, cb) = (classify(a, v), classify(b, v));
            let neg = match cb.stride {
                Stride::Constant(c) => Stride::Constant(-c),
                other => other,
            };
            Class {
                depends: ca.depends || cb.depends,
                stride: merge_worst(ca.stride, neg),
            }
        }
        Expr::Mul(a, b) => {
            let (ca, cb) = (classify(a, v), classify(b, v));
            let depends = ca.depends || cb.depends;
            let stride = match (ca.depends, cb.depends) {
                (false, false) => Stride::Constant(0),
                (true, true) => escalate(ca.stride, cb.stride),
                (true, false) => scale_stride(ca.stride, b),
                (false, true) => scale_stride(cb.stride, a),
            };
            Class { depends, stride }
        }
        Expr::Div(a, b) | Expr::Mod(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
            let (ca, cb) = (classify(a, v), classify(b, v));
            let depends = ca.depends || cb.depends;
            let stride = if !depends {
                Stride::Constant(0)
            } else if matches!(ca.stride, Stride::Indirect)
                || matches!(cb.stride, Stride::Indirect)
            {
                Stride::Indirect
            } else {
                Stride::Irregular
            };
            Class { depends, stride }
        }
        Expr::Load(_, idx) => {
            let depends = idx.iter().any(|e| classify(e, v).depends);
            Class {
                depends,
                stride: if depends {
                    Stride::Indirect
                } else {
                    Stride::Constant(0)
                },
            }
        }
    }
}

/// Escalates two `v`-dependent strides combined multiplicatively.
fn escalate(a: Stride, b: Stride) -> Stride {
    if matches!(a, Stride::Indirect) || matches!(b, Stride::Indirect) {
        Stride::Indirect
    } else {
        Stride::Irregular
    }
}

/// Multiplies a `v`-dependent stride by a `v`-invariant factor expression.
fn scale_stride(s: Stride, factor: &Expr) -> Stride {
    match s {
        Stride::Constant(c) => match affine_form(factor) {
            Some(f) if f.is_constant() => Stride::Constant(c * f.constant),
            // The factor is loop-invariant but not a compile-time constant;
            // the stride is fixed within the loop but unknown statically.
            _ => Stride::Irregular,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ArrayId;

    const I: VarId = VarId(0);
    const J: VarId = VarId(1);

    fn i() -> Expr {
        Expr::var(I)
    }
    fn j() -> Expr {
        Expr::var(J)
    }

    #[test]
    fn affine_form_of_linear_expr() {
        let e = i() * 8 + j() * 400 + 16;
        let f = affine_form(&e).unwrap();
        assert_eq!(f.constant, 16);
        assert_eq!(f.coeff(I), 8);
        assert_eq!(f.coeff(J), 400);
        assert_eq!(f.coeff(VarId(9)), 0);
    }

    #[test]
    fn affine_form_cancels_terms() {
        let e = i() * 3 - i() * 3 + 7;
        let f = affine_form(&e).unwrap();
        assert!(f.is_constant());
        assert_eq!(f.constant, 7);
    }

    #[test]
    fn affine_form_folds_constant_minmax_divmod() {
        let e = Expr::c(7).min(3) + Expr::c(10).div(4) + Expr::c(10).rem(4);
        let f = affine_form(&e).unwrap();
        assert_eq!(f.constant, 3 + 2 + 2);
    }

    #[test]
    fn affine_form_rejects_nonlinear() {
        assert!(affine_form(&(i() * j())).is_none());
        assert!(affine_form(&i().min(j())).is_none());
        assert!(affine_form(&Expr::load(ArrayId(0), vec![i()])).is_none());
        assert!(affine_form(&i().div(2)).is_none());
    }

    #[test]
    fn affine_substitute_and_eval() {
        let f = affine_form(&(i() * 8 + j() * 400 + 16)).unwrap();
        let g = f.substitute(J, 2);
        assert_eq!(g.constant, 816);
        assert_eq!(g.coeff(J), 0);
        assert_eq!(g.eval(|v| if v == I { 3 } else { 0 }), 840);
    }

    #[test]
    fn stride_of_affine_expr() {
        let e = i() * 8 + j() * 400 + 16;
        assert_eq!(stride_wrt(&e, I), Stride::Constant(8));
        assert_eq!(stride_wrt(&e, J), Stride::Constant(400));
        assert_eq!(stride_wrt(&e, VarId(5)), Stride::Constant(0));
    }

    #[test]
    fn stride_through_subtraction() {
        let e = j() * 10 - i() * 4;
        assert_eq!(stride_wrt(&e, I), Stride::Constant(-4));
        assert_eq!(stride_wrt(&e, J), Stride::Constant(10));
    }

    #[test]
    fn stride_of_indirect_access() {
        // a(ix(i)) — indirect with respect to i, invariant w.r.t. j.
        let e = Expr::load(ArrayId(0), vec![i()]) * 8;
        assert_eq!(stride_wrt(&e, I), Stride::Indirect);
        assert_eq!(stride_wrt(&e, J), Stride::Constant(0));
    }

    #[test]
    fn invariant_indirect_part_does_not_taint_other_vars() {
        // i*8 + ix[j]: constant stride in i, indirect in j.
        let e = i() * 8 + Expr::load(ArrayId(0), vec![j()]);
        assert_eq!(stride_wrt(&e, I), Stride::Constant(8));
        assert_eq!(stride_wrt(&e, J), Stride::Indirect);
    }

    #[test]
    fn nonlinear_dependence_is_irregular() {
        assert_eq!(stride_wrt(&(i() * j()), I), Stride::Irregular);
        assert_eq!(stride_wrt(&i().div(2), I), Stride::Irregular);
        assert_eq!(stride_wrt(&i().rem(4), I), Stride::Irregular);
        assert_eq!(stride_wrt(&i().min(j()), I), Stride::Irregular);
        // min over v-invariant operands is invariant
        assert_eq!(stride_wrt(&j().min(3), I), Stride::Constant(0));
    }

    #[test]
    fn indirect_wins_over_irregular() {
        let e = Expr::load(ArrayId(0), vec![i()]).min(i());
        assert_eq!(stride_wrt(&e, I), Stride::Indirect);
    }

    #[test]
    fn affine_display() {
        let f = affine_form(&(i() * 8 - j() * 4 + 2)).unwrap();
        assert_eq!(f.to_string(), "2 + 8·var0 - 4·var1");
    }
}
