//! Fluent construction of [`Program`]s.
//!
//! The builder enforces well-formedness by construction: scopes nest
//! properly, every reference records its innermost enclosing scope, and
//! array base addresses are assigned (page-aligned, non-overlapping) when
//! the program is finalized.
//!
//! # Examples
//!
//! ```
//! use reuselens_ir::ProgramBuilder;
//!
//! let mut p = ProgramBuilder::new("fig1");
//! let a = p.array("a", 8, &[100, 100]);
//! let b = p.array("b", 8, &[100, 100]);
//! p.routine("main", |r| {
//!     r.for_("i", 0, 99, |r, i| {
//!         r.for_("j", 0, 99, |r, j| {
//!             r.load(b, vec![i.into(), j.into()]);
//!             r.load(a, vec![i.into(), j.into()]);
//!             r.store(a, vec![i.into(), j.into()]);
//!         });
//!     });
//! });
//! let prog = p.finish();
//! assert_eq!(prog.references().len(), 3);
//! prog.validate().unwrap();
//! ```

use crate::array::{ArrayDecl, ArrayKind, Layout};
use crate::expr::{Expr, Pred};
use crate::ids::{ArrayId, RefId, RoutineId, ScopeId, VarId};
use crate::program::{Program, Routine, ScopeInfo, ScopeKind};
use crate::stmt::{AccessKind, Loop, Reference, Stmt};

/// Alignment for array base addresses: arrays never share a 4 KiB region,
/// as with separately allocated objects in a real address space.
const ARRAY_ALIGN: u64 = 4096;
/// First assigned base address (a recognizable nonzero origin).
const BASE_ORIGIN: u64 = 0x10_0000;

/// Incrementally builds a [`Program`]; see the module-level docs for a
/// complete example.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    refs: Vec<Reference>,
    scopes: Vec<ScopeInfo>,
    routines: Vec<Option<Routine>>,
    routine_names: Vec<String>,
    var_names: Vec<String>,
    entry: Option<RoutineId>,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            arrays: Vec::new(),
            refs: Vec::new(),
            scopes: vec![ScopeInfo {
                id: ScopeId::ROOT,
                kind: ScopeKind::Program,
                name: "<program>".into(),
                parent: None,
                routine: None,
            }],
            routines: Vec::new(),
            routine_names: Vec::new(),
            var_names: Vec::new(),
            entry: None,
        }
    }

    /// Declares a column-major data array.
    pub fn array(&mut self, name: impl Into<String>, elem_size: u32, dims: &[u64]) -> ArrayId {
        self.array_with(name, elem_size, dims, Layout::ColumnMajor, ArrayKind::Data)
    }

    /// Declares an integer index array (8-byte elements, column-major) whose
    /// contents the executor keeps for indirect addressing.
    pub fn index_array(&mut self, name: impl Into<String>, dims: &[u64]) -> ArrayId {
        self.array_with(name, 8, dims, Layout::ColumnMajor, ArrayKind::Index)
    }

    /// Declares an array with explicit layout and kind.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is zero or any extent is zero.
    pub fn array_with(
        &mut self,
        name: impl Into<String>,
        elem_size: u32,
        dims: &[u64],
        layout: Layout,
        kind: ArrayKind,
    ) -> ArrayId {
        assert!(elem_size > 0, "element size must be positive");
        assert!(
            dims.iter().all(|&d| d > 0),
            "array extents must be positive"
        );
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem_size,
            dims: dims.to_vec(),
            layout,
            kind,
            base: 0, // assigned in finish()
        });
        id
    }

    /// Pre-declares a routine so it can be called before it is defined
    /// (mutual recursion between phases).
    pub fn declare_routine(&mut self, name: impl Into<String>) -> RoutineId {
        let id = RoutineId(self.routines.len() as u32);
        let name = name.into();
        self.routines.push(None);
        self.routine_names.push(name.clone());
        let scope = self.new_scope(ScopeKind::Routine(id), name, ScopeId::ROOT, Some(id));
        // Remember the scope by storing a placeholder routine body.
        self.routines[id.index()] = Some(Routine {
            id,
            name: self.routine_names[id.index()].clone(),
            scope,
            body: Vec::new(),
        });
        self.routines[id.index()].as_mut().unwrap().body = Vec::new();
        // Mark as undefined by emptying; definition replaces the body.
        id
    }

    /// Defines the body of a previously declared routine.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`declare_routine`](Self::declare_routine).
    pub fn define_routine(&mut self, id: RoutineId, f: impl FnOnce(&mut BodyBuilder<'_>)) {
        let scope = self.routines[id.index()]
            .as_ref()
            .expect("routine must be declared before definition")
            .scope;
        let mut body_builder = BodyBuilder {
            pb: self,
            routine: id,
            scope_stack: vec![scope],
            stmt_stack: vec![Vec::new()],
        };
        f(&mut body_builder);
        let body = body_builder.stmt_stack.pop().expect("balanced stmt stack");
        assert!(
            body_builder.stmt_stack.is_empty(),
            "unbalanced scopes in routine body"
        );
        self.routines[id.index()].as_mut().unwrap().body = body;
    }

    /// Declares and defines a routine in one call. The first routine built
    /// becomes the entry point unless [`set_entry`](Self::set_entry) is called.
    pub fn routine(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> RoutineId {
        let id = self.declare_routine(name);
        self.define_routine(id, f);
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Chooses the entry routine.
    pub fn set_entry(&mut self, id: RoutineId) {
        self.entry = Some(id);
    }

    /// Declares a program-level scalar variable (initially zero) that
    /// routines can assign with [`BodyBuilder::set`] and callees can read —
    /// the mechanism for passing loop bounds across routine calls (e.g. the
    /// strip bounds a tiled caller hands to its callee).
    pub fn scalar(&mut self, name: &str) -> VarId {
        self.new_var(name)
    }

    /// Finalizes the program: assigns array base addresses and freezes all
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if no routine was defined.
    pub fn finish(mut self) -> Program {
        let mut next = BASE_ORIGIN;
        for (i, a) in self.arrays.iter_mut().enumerate() {
            // Stagger bases across cache sets (line-aligned): real
            // allocators do not start every object at a page boundary, and
            // perfectly aligned bases would alias pathologically in
            // small set-associative caches.
            let stagger = ((i as u64 * 7) % 32) * 128;
            a.base = next + stagger;
            let sz = a.size_bytes().max(1);
            next = (a.base + sz).div_ceil(ARRAY_ALIGN) * ARRAY_ALIGN;
        }
        let entry = self.entry.expect("program needs at least one routine");
        Program {
            name: self.name,
            arrays: self.arrays,
            refs: self.refs,
            scopes: self.scopes,
            routines: self
                .routines
                .into_iter()
                .map(|r| r.expect("declared routine was never defined"))
                .collect(),
            var_names: self.var_names,
            entry,
        }
    }

    fn new_scope(
        &mut self,
        kind: ScopeKind,
        name: String,
        parent: ScopeId,
        routine: Option<RoutineId>,
    ) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        self.scopes.push(ScopeInfo {
            id,
            kind,
            name,
            parent: Some(parent),
            routine,
        });
        id
    }

    fn new_var(&mut self, name: &str) -> VarId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        id
    }
}

/// Builds the body of one routine; obtained from
/// [`ProgramBuilder::routine`]. Nested loops and guards are expressed with
/// closures so the scope structure mirrors the source text.
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    routine: RoutineId,
    scope_stack: Vec<ScopeId>,
    stmt_stack: Vec<Vec<Stmt>>,
}

impl BodyBuilder<'_> {
    /// Current innermost scope.
    pub fn current_scope(&self) -> ScopeId {
        *self.scope_stack.last().expect("scope stack never empty")
    }

    /// Adds a unit-step loop over `lower..=upper` (Fortran `DO` semantics:
    /// both bounds inclusive). The closure receives the loop variable.
    pub fn for_(
        &mut self,
        var_name: &str,
        lower: impl Into<Expr>,
        upper: impl Into<Expr>,
        f: impl FnOnce(&mut Self, VarId),
    ) -> ScopeId {
        self.for_step(var_name, lower, upper, 1, f)
    }

    /// Adds a loop with an explicit nonzero step; negative steps iterate
    /// downward (`DO i = hi, lo, -1`).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn for_step(
        &mut self,
        var_name: &str,
        lower: impl Into<Expr>,
        upper: impl Into<Expr>,
        step: i64,
        f: impl FnOnce(&mut Self, VarId),
    ) -> ScopeId {
        assert!(step != 0, "loop step must be nonzero");
        let var = self.pb.new_var(var_name);
        let parent = self.current_scope();
        let scope = self.pb.new_scope(
            ScopeKind::Loop(var),
            var_name.to_string(),
            parent,
            Some(self.routine),
        );
        self.scope_stack.push(scope);
        self.stmt_stack.push(Vec::new());
        f(self, var);
        let body = self.stmt_stack.pop().expect("balanced stmt stack");
        self.scope_stack.pop();
        self.push(Stmt::Loop(Loop {
            scope,
            var,
            lower: lower.into(),
            upper: upper.into(),
            step,
            body,
        }));
        scope
    }

    /// Adds a load of `array[indices]` and returns the new reference id.
    pub fn load(&mut self, array: ArrayId, indices: Vec<Expr>) -> RefId {
        self.access(array, indices, AccessKind::Load, None)
    }

    /// Adds a store to `array[indices]` and returns the new reference id.
    pub fn store(&mut self, array: ArrayId, indices: Vec<Expr>) -> RefId {
        self.access(array, indices, AccessKind::Store, None)
    }

    /// Adds a load with an explicit source-style label (for reports).
    pub fn load_labeled(&mut self, array: ArrayId, indices: Vec<Expr>, label: &str) -> RefId {
        self.access(array, indices, AccessKind::Load, Some(label.to_string()))
    }

    /// Adds a store with an explicit source-style label (for reports).
    pub fn store_labeled(&mut self, array: ArrayId, indices: Vec<Expr>, label: &str) -> RefId {
        self.access(array, indices, AccessKind::Store, Some(label.to_string()))
    }

    /// Adds a guarded block executed when `cond` holds.
    pub fn if_(&mut self, cond: Pred, f: impl FnOnce(&mut Self)) {
        self.stmt_stack.push(Vec::new());
        f(self);
        let then_body = self.stmt_stack.pop().expect("balanced stmt stack");
        self.push(Stmt::If {
            cond,
            then_body,
            else_body: Vec::new(),
        });
    }

    /// Adds a guarded block with both branches.
    pub fn if_else(
        &mut self,
        cond: Pred,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.stmt_stack.push(Vec::new());
        then_f(self);
        let then_body = self.stmt_stack.pop().expect("balanced stmt stack");
        self.stmt_stack.push(Vec::new());
        else_f(self);
        let else_body = self.stmt_stack.pop().expect("balanced stmt stack");
        self.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
    }

    /// Declares a fresh scalar variable initialized to `value` and returns
    /// it (computed subscripts such as diagonal coordinates).
    pub fn let_(&mut self, name: &str, value: impl Into<Expr>) -> VarId {
        let var = self.pb.new_var(name);
        self.push(Stmt::Assign {
            var,
            value: value.into(),
        });
        var
    }

    /// Re-assigns an existing scalar variable.
    pub fn set(&mut self, var: VarId, value: impl Into<Expr>) {
        self.push(Stmt::Assign {
            var,
            value: value.into(),
        });
    }

    /// Calls another routine.
    pub fn call(&mut self, target: RoutineId) {
        self.push(Stmt::Call(target));
    }

    fn access(
        &mut self,
        array: ArrayId,
        indices: Vec<Expr>,
        kind: AccessKind,
        label: Option<String>,
    ) -> RefId {
        let id = RefId(self.pb.refs.len() as u32);
        let label = label.unwrap_or_else(|| {
            let arr_name = self.pb.arrays[array.index()].name.clone();
            let subs: Vec<String> = indices.iter().map(|e| e.to_string()).collect();
            format!("{arr_name}({})", subs.join(","))
        });
        self.pb.refs.push(Reference {
            id,
            array,
            indices,
            kind,
            scope: self.current_scope(),
            label,
        });
        self.push(Stmt::Access(id));
        id
    }

    fn push(&mut self, stmt: Stmt) {
        self.stmt_stack
            .last_mut()
            .expect("stmt stack never empty")
            .push(stmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScopeKind;

    #[test]
    fn builder_assigns_disjoint_line_aligned_bases() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[100]);
        let b = p.array("b", 8, &[100]);
        let c = p.array("c", 8, &[100]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::c(0)]);
            r.load(b, vec![Expr::c(0)]);
            r.load(c, vec![Expr::c(0)]);
        });
        let prog = p.finish();
        let (ba, bb, bc) = (
            prog.array(a).base(),
            prog.array(b).base(),
            prog.array(c).base(),
        );
        // Line-aligned, disjoint, and staggered across cache sets.
        for base in [ba, bb, bc] {
            assert_eq!(base % 128, 0);
        }
        assert!(bb >= ba + prog.array(a).size_bytes());
        assert!(bc >= bb + prog.array(b).size_bytes());
        assert_ne!(ba % ARRAY_ALIGN, bb % ARRAY_ALIGN);
    }

    #[test]
    fn nested_loops_create_nested_scopes() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[10, 10]);
        let mut inner = None;
        p.routine("main", |r| {
            r.for_("i", 0, 9, |r, i| {
                inner = Some(r.for_("j", 0, 9, |r, j| {
                    r.store(a, vec![j.into(), i.into()]);
                }));
            });
        });
        let prog = p.finish();
        prog.validate().unwrap();
        let inner = inner.unwrap();
        assert!(matches!(prog.scope(inner).kind(), ScopeKind::Loop(_)));
        assert_eq!(prog.references()[0].scope(), inner);
    }

    #[test]
    fn labels_default_to_array_and_subscripts() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("src", 8, &[10]);
        p.routine("main", |r| {
            r.for_("i", 0, 9, |r, i| {
                r.load(a, vec![Expr::var(i) + 1]);
            });
        });
        let prog = p.finish();
        assert_eq!(prog.references()[0].label(), "src((var0 + 1))");
    }

    #[test]
    fn forward_declared_routines_can_be_called() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        let callee = p.declare_routine("callee");
        let main = p.routine("main", |r| {
            r.call(callee);
        });
        p.define_routine(callee, |r| {
            r.load(a, vec![Expr::c(0)]);
        });
        p.set_entry(main);
        let prog = p.finish();
        prog.validate().unwrap();
        assert_eq!(prog.entry(), main);
        assert_eq!(prog.routines().len(), 2);
    }

    #[test]
    fn if_else_records_both_branches() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.for_("i", 0, 3, |r, i| {
                r.if_else(
                    Pred::Lt(Expr::var(i), Expr::c(2)),
                    |r| {
                        r.load(a, vec![Expr::c(0)]);
                    },
                    |r| {
                        r.load(a, vec![Expr::c(1)]);
                    },
                );
            });
        });
        let prog = p.finish();
        prog.validate().unwrap();
        assert_eq!(prog.references().len(), 2);
    }

    #[test]
    #[should_panic(expected = "loop step must be nonzero")]
    fn zero_step_panics() {
        let mut p = ProgramBuilder::new("t");
        p.routine("main", |r| {
            r.for_step("i", 0, 9, 0, |_, _| {});
        });
    }
}
