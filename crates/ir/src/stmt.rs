//! Statements: loops, guarded blocks, scalar assignments, memory references,
//! and routine calls.

use crate::expr::{Expr, Pred};
use crate::ids::{ArrayId, RefId, RoutineId, ScopeId, VarId};
use std::fmt;

/// Whether a memory reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// A static memory reference: one load or store site in the program text.
///
/// References carry the subscript expressions used to compute the accessed
/// address — the information the paper's tool recovers from address
/// computations in machine code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Reference {
    pub(crate) id: RefId,
    pub(crate) array: ArrayId,
    pub(crate) indices: Vec<Expr>,
    pub(crate) kind: AccessKind,
    pub(crate) scope: ScopeId,
    pub(crate) label: String,
}

impl Reference {
    /// This reference's id.
    pub fn id(&self) -> RefId {
        self.id
    }

    /// The array it accesses.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Subscript expressions, one per array dimension.
    pub fn indices(&self) -> &[Expr] {
        &self.indices
    }

    /// Load or store.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Innermost enclosing scope (loop or routine).
    pub fn scope(&self) -> ScopeId {
        self.scope
    }

    /// Human-readable label, e.g. `"src(i,j,k,n)"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True when any subscript contains an indirect load.
    pub fn is_indirect(&self) -> bool {
        self.indices.iter().any(Expr::has_load)
    }
}

/// A counted loop with Fortran `DO` semantics.
///
/// The loop runs `var = lower; while step > 0 ? var <= upper : var >= upper;
/// var += step`, i.e. **both bounds are inclusive** and negative steps walk
/// backwards, which matches the sweeps in the modeled workloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loop {
    pub(crate) scope: ScopeId,
    pub(crate) var: VarId,
    pub(crate) lower: Expr,
    pub(crate) upper: Expr,
    pub(crate) step: i64,
    pub(crate) body: Vec<Stmt>,
}

impl Loop {
    /// The scope id this loop defines.
    pub fn scope(&self) -> ScopeId {
        self.scope
    }

    /// The induction variable.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Inclusive lower bound.
    pub fn lower(&self) -> &Expr {
        &self.lower
    }

    /// Inclusive upper bound.
    pub fn upper(&self) -> &Expr {
        &self.upper
    }

    /// Step (nonzero; negative steps iterate downwards).
    pub fn step(&self) -> i64 {
        self.step
    }

    /// Loop body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
}

/// One statement in a routine or loop body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// A nested loop.
    Loop(Loop),
    /// A memory access; the full [`Reference`] lives in the program's
    /// reference table.
    Access(RefId),
    /// A guarded block (loop-bound clipping, wavefront membership tests).
    If {
        /// Guard condition.
        cond: Pred,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// Assigns an integer expression to a scalar variable (computed
    /// subscripts such as a diagonal-plane coordinate).
    Assign {
        /// Target variable.
        var: VarId,
        /// Value expression.
        value: Expr,
    },
    /// Calls another routine (enters its scope).
    Call(RoutineId),
}

/// Walks all statements in a body, depth-first, invoking `f` on each.
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in body {
        f(stmt);
        match stmt {
            Stmt::Loop(l) => walk_stmts(&l.body, f),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_reports_indirection() {
        let direct = Reference {
            id: RefId(0),
            array: ArrayId(0),
            indices: vec![Expr::var(VarId(0))],
            kind: AccessKind::Load,
            scope: ScopeId(1),
            label: "a(i)".into(),
        };
        assert!(!direct.is_indirect());
        let indirect = Reference {
            indices: vec![Expr::load(ArrayId(1), vec![Expr::var(VarId(0))])],
            label: "a(ix(i))".into(),
            ..direct.clone()
        };
        assert!(indirect.is_indirect());
        assert_eq!(indirect.kind(), AccessKind::Load);
    }

    #[test]
    fn walk_visits_nested_statements() {
        let inner = Stmt::Access(RefId(0));
        let guarded = Stmt::If {
            cond: Pred::True,
            then_body: vec![Stmt::Access(RefId(1))],
            else_body: vec![Stmt::Access(RefId(2))],
        };
        let lp = Stmt::Loop(Loop {
            scope: ScopeId(2),
            var: VarId(0),
            lower: Expr::c(0),
            upper: Expr::c(9),
            step: 1,
            body: vec![inner, guarded],
        });
        let mut seen = Vec::new();
        walk_stmts(std::slice::from_ref(&lp), &mut |s| {
            if let Stmt::Access(r) = s {
                seen.push(*r);
            }
        });
        assert_eq!(seen, vec![RefId(0), RefId(1), RefId(2)]);
    }

    #[test]
    fn access_kind_displays() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
