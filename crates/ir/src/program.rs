//! The [`Program`]: routines, arrays, references, and the static scope tree.

use crate::array::{ArrayDecl, ArrayKind};
use crate::ids::{ArrayId, RefId, RoutineId, ScopeId, VarId};
use crate::stmt::{walk_stmts, Reference, Stmt};
use std::error::Error;
use std::fmt;

/// What a scope node in the static scope tree represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKind {
    /// The program root (aggregates everything).
    Program,
    /// A routine body.
    Routine(RoutineId),
    /// A loop; carries its induction variable.
    Loop(VarId),
}

/// A node in the static scope tree: program → routines → (nested) loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeInfo {
    pub(crate) id: ScopeId,
    pub(crate) kind: ScopeKind,
    pub(crate) name: String,
    pub(crate) parent: Option<ScopeId>,
    pub(crate) routine: Option<RoutineId>,
}

impl ScopeInfo {
    /// This scope's id.
    pub fn id(&self) -> ScopeId {
        self.id
    }

    /// What the scope represents.
    pub fn kind(&self) -> ScopeKind {
        self.kind
    }

    /// Human-readable name (`"main"`, `"loop j"`, `"idiag"`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parent scope in the static tree (`None` for the root).
    pub fn parent(&self) -> Option<ScopeId> {
        self.parent
    }

    /// The routine that (statically) contains this scope; `None` for the
    /// program root.
    pub fn routine(&self) -> Option<RoutineId> {
        self.routine
    }

    /// True when this scope is a loop.
    pub fn is_loop(&self) -> bool {
        matches!(self.kind, ScopeKind::Loop(_))
    }
}

/// A routine: a named body of statements with its own scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Routine {
    pub(crate) id: RoutineId,
    pub(crate) name: String,
    pub(crate) scope: ScopeId,
    pub(crate) body: Vec<Stmt>,
}

impl Routine {
    /// This routine's id.
    pub fn id(&self) -> RoutineId {
        self.id
    }

    /// The routine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scope the routine body defines.
    pub fn scope(&self) -> ScopeId {
        self.scope
    }

    /// The statements of the body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
}

/// Error produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.0)
    }
}

impl Error for ValidateError {}

/// A complete analyzable program, produced by
/// [`ProgramBuilder::finish`](crate::ProgramBuilder::finish).
///
/// The program owns the array table (with assigned base addresses), the
/// reference table, the static scope tree, and the routines. It is immutable
/// after construction; the trace executor and the static analyses only read
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) refs: Vec<Reference>,
    pub(crate) scopes: Vec<ScopeInfo>,
    pub(crate) routines: Vec<Routine>,
    pub(crate) var_names: Vec<String>,
    pub(crate) entry: RoutineId,
}

impl Program {
    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry routine executed by the trace executor.
    pub fn entry(&self) -> RoutineId {
        self.entry
    }

    /// All declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array declaration.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Finds an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// All static memory references.
    pub fn references(&self) -> &[Reference] {
        &self.refs
    }

    /// Looks up a reference.
    pub fn reference(&self, id: RefId) -> &Reference {
        &self.refs[id.index()]
    }

    /// All scope-tree nodes, indexed by [`ScopeId`].
    pub fn scopes(&self) -> &[ScopeInfo] {
        &self.scopes
    }

    /// Looks up a scope node.
    pub fn scope(&self, id: ScopeId) -> &ScopeInfo {
        &self.scopes[id.index()]
    }

    /// All routines, indexed by [`RoutineId`].
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// Looks up a routine.
    pub fn routine(&self, id: RoutineId) -> &Routine {
        &self.routines[id.index()]
    }

    /// Finds a routine by name.
    pub fn routine_by_name(&self, name: &str) -> Option<RoutineId> {
        self.routines
            .iter()
            .position(|r| r.name == name)
            .map(|i| RoutineId(i as u32))
    }

    /// Finds a scope by its display name (first match).
    pub fn scope_by_name(&self, name: &str) -> Option<ScopeId> {
        self.scopes
            .iter()
            .position(|s| s.name == name)
            .map(|i| ScopeId(i as u32))
    }

    /// Name of a scalar variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of declared scalar variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Iterates a scope's ancestors from itself up to (and including) the
    /// program root.
    pub fn ancestors(&self, scope: ScopeId) -> Ancestors<'_> {
        Ancestors {
            program: self,
            next: Some(scope),
        }
    }

    /// True when `outer` is `inner` or one of its static ancestors.
    pub fn is_ancestor(&self, outer: ScopeId, inner: ScopeId) -> bool {
        self.ancestors(inner).any(|s| s == outer)
    }

    /// Depth of a scope in the static tree (root = 0).
    pub fn depth(&self, scope: ScopeId) -> usize {
        self.ancestors(scope).count() - 1
    }

    /// Lowest common ancestor of two scopes in the static tree.
    pub fn lca(&self, a: ScopeId, b: ScopeId) -> ScopeId {
        let path_a: Vec<ScopeId> = self.ancestors(a).collect();
        self.ancestors(b)
            .find(|s| path_a.contains(s))
            .unwrap_or(ScopeId::ROOT)
    }

    /// Enclosing loop scopes of a scope, innermost first, staying inside the
    /// scope's routine (this is the nest the static stride analysis walks).
    pub fn enclosing_loops(&self, scope: ScopeId) -> Vec<ScopeId> {
        let mut out = Vec::new();
        for s in self.ancestors(scope) {
            match self.scope(s).kind {
                ScopeKind::Loop(_) => out.push(s),
                ScopeKind::Routine(_) | ScopeKind::Program => break,
            }
        }
        out
    }

    /// The routine statically containing a scope (`None` only for the root).
    pub fn routine_of(&self, scope: ScopeId) -> Option<RoutineId> {
        self.scope(scope).routine
    }

    /// The induction variable of a loop scope.
    pub fn loop_var(&self, scope: ScopeId) -> Option<VarId> {
        match self.scope(scope).kind {
            ScopeKind::Loop(v) => Some(v),
            _ => None,
        }
    }

    /// References whose innermost enclosing scope is within `scope`
    /// (inclusive, static containment).
    pub fn references_under(&self, scope: ScopeId) -> Vec<RefId> {
        self.refs
            .iter()
            .filter(|r| self.is_ancestor(scope, r.scope))
            .map(|r| r.id)
            .collect()
    }

    /// Structural checks: ids in range, calls resolve, loads only read index
    /// arrays, every `Stmt::Access` id matches its table entry.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.entry.index() >= self.routines.len() {
            return Err(ValidateError(format!(
                "entry routine {} out of range",
                self.entry
            )));
        }
        for (i, s) in self.scopes.iter().enumerate() {
            if s.id.index() != i {
                return Err(ValidateError(format!("scope table misindexed at {i}")));
            }
            if let Some(p) = s.parent {
                if p.index() >= self.scopes.len() {
                    return Err(ValidateError(format!("scope {} has bad parent", s.id)));
                }
            } else if s.id != ScopeId::ROOT {
                return Err(ValidateError(format!("non-root scope {} lacks parent", s.id)));
            }
        }
        for r in &self.refs {
            let arr = r
                .array
                .index()
                .checked_sub(0)
                .filter(|&i| i < self.arrays.len())
                .ok_or_else(|| ValidateError(format!("{} has bad array id", r.id)))?;
            if r.indices.len() != self.arrays[arr].dims.len() {
                return Err(ValidateError(format!(
                    "{} subscript count {} != rank {} of {}",
                    r.id,
                    r.indices.len(),
                    self.arrays[arr].dims.len(),
                    self.arrays[arr].name
                )));
            }
            let mut loads = Vec::new();
            for e in &r.indices {
                e.collect_loads(&mut loads);
            }
            for l in loads {
                if l.index() >= self.arrays.len() {
                    return Err(ValidateError(format!("{} loads from bad array", r.id)));
                }
                if self.arrays[l.index()].kind != ArrayKind::Index {
                    return Err(ValidateError(format!(
                        "{} indirects through non-index array {}",
                        r.id,
                        self.arrays[l.index()].name
                    )));
                }
            }
        }
        for rtn in &self.routines {
            let mut err = None;
            walk_stmts(&rtn.body, &mut |s| {
                if err.is_some() {
                    return;
                }
                match s {
                    Stmt::Access(r)
                        if r.index() >= self.refs.len() => {
                            err = Some(format!("routine {} uses bad {r}", rtn.name));
                        }
                    Stmt::Call(target)
                        if target.index() >= self.routines.len() => {
                            err = Some(format!("routine {} calls bad {target}", rtn.name));
                        }
                    Stmt::Assign { var, .. }
                        if var.index() >= self.var_names.len() => {
                            err = Some(format!("routine {} assigns bad {var}", rtn.name));
                        }
                    _ => {}
                }
            });
            if let Some(msg) = err {
                return Err(ValidateError(msg));
            }
        }
        Ok(())
    }

    /// Total declared data footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayDecl::size_bytes).sum()
    }

    /// Qualified display path of a scope, e.g. `"sweep/idiag"`.
    pub fn scope_path(&self, scope: ScopeId) -> String {
        let mut parts: Vec<&str> = self
            .ancestors(scope)
            .map(|s| self.scope(s).name.as_str())
            .collect();
        parts.pop(); // drop the program root
        parts.reverse();
        parts.join("/")
    }

    /// Subscript expression helper: the affine form of a reference's
    /// linearized byte offset within its array (base not included).
    pub fn byte_offset_expr(&self, r: &Reference) -> Option<crate::affine::Affine> {
        let arr = self.array(r.array);
        let mut total = crate::affine::Affine::constant(0);
        for (d, idx) in r.indices.iter().enumerate() {
            let f = crate::affine::affine_form(idx)?;
            total = total.add(&f.scale(arr.byte_stride_of_dim(d) as i64));
        }
        Some(total)
    }
}

/// Iterator over a scope's ancestor chain. Created by [`Program::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    program: &'a Program,
    next: Option<ScopeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = ScopeId;

    fn next(&mut self) -> Option<ScopeId> {
        let cur = self.next?;
        self.next = self.program.scope(cur).parent;
        Some(cur)
    }
}

#[allow(unused_imports)]
use crate::builder::ProgramBuilder;

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::ids::ScopeId;

    fn two_level() -> super::Program {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[16, 16]);
        p.routine("main", |r| {
            r.for_("j", 0, 15, |r, j| {
                r.for_("i", 0, 15, |r, i| {
                    r.load(a, vec![i.into(), j.into()]);
                });
            });
        });
        p.finish()
    }

    #[test]
    fn scope_tree_shape() {
        let p = two_level();
        assert!(p.validate().is_ok());
        let main = p.routine_by_name("main").unwrap();
        let main_scope = p.routine(main).scope();
        assert_eq!(p.scope(main_scope).parent(), Some(ScopeId::ROOT));
        let j = p.scope_by_name("j").unwrap();
        let i = p.scope_by_name("i").unwrap();
        assert_eq!(p.scope(j).parent(), Some(main_scope));
        assert_eq!(p.scope(i).parent(), Some(j));
        assert_eq!(p.depth(i), 3);
        assert!(p.is_ancestor(j, i));
        assert!(!p.is_ancestor(i, j));
        assert_eq!(p.lca(i, j), j);
        assert_eq!(p.scope_path(i), "main/j/i");
    }

    #[test]
    fn enclosing_loops_innermost_first() {
        let p = two_level();
        let i = p.scope_by_name("i").unwrap();
        let j = p.scope_by_name("j").unwrap();
        let r = &p.references()[0];
        assert_eq!(r.scope(), i);
        assert_eq!(p.enclosing_loops(r.scope()), vec![i, j]);
    }

    #[test]
    fn byte_offset_expr_linearizes() {
        let p = two_level();
        let r = &p.references()[0];
        let aff = p.byte_offset_expr(r).unwrap();
        // offset = 8*i + 128*j
        let i_var = p.loop_var(p.scope_by_name("i").unwrap()).unwrap();
        let j_var = p.loop_var(p.scope_by_name("j").unwrap()).unwrap();
        assert_eq!(aff.coeff(i_var), 8);
        assert_eq!(aff.coeff(j_var), 128);
    }

    #[test]
    fn footprint_counts_all_arrays() {
        let p = two_level();
        assert_eq!(p.footprint_bytes(), 16 * 16 * 8);
    }

    #[test]
    fn references_under_scope() {
        let p = two_level();
        let main = p.routine(p.entry()).scope();
        assert_eq!(p.references_under(main).len(), 1);
        let i = p.scope_by_name("i").unwrap();
        assert_eq!(p.references_under(i).len(), 1);
    }
}
