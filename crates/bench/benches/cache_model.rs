//! Cache-model benchmarks: probabilistic set-associative prediction from a
//! measured profile versus the brute-force LRU simulator on the same
//! trace.

use std::time::Duration;
use reuselens_bench::harness::{Criterion, Throughput};
use reuselens_bench::{criterion_group, criterion_main};
use reuselens::cache::{predict_level, CacheSim, MemoryHierarchy};
use reuselens::core::analyze_program;
use reuselens::trace::Executor;
use reuselens::workloads::kernels::streaming;

fn bench_predict_vs_simulate(c: &mut Criterion) {
    let w = streaming(1 << 15, 4);
    let h = MemoryHierarchy::itanium2();
    let analysis = analyze_program(&w.program, &[128], vec![]).unwrap();
    let profile = analysis.profile_at(128).unwrap();

    let mut g = c.benchmark_group("cache_model");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(20);
    g.bench_function("predict_from_profile", |b| {
        b.iter(|| {
            let l2 = predict_level(profile, &h.levels[0]);
            let l3 = predict_level(profile, &h.levels[1]);
            l2.total + l3.total
        })
    });
    g.sample_size(10);
    g.throughput(Throughput::Elements(4 << 15));
    g.bench_function("simulate_full_trace", |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(&h.levels[0], w.program.references().len());
            Executor::new(&w.program).run(&mut sim).unwrap();
            sim.misses()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_predict_vs_simulate);
criterion_main!(benches);
