//! Static-analysis benchmarks: symbolic formulas, related-reference
//! grouping, and fragmentation factors over real workload programs.

use std::time::Duration;
use reuselens_bench::harness::{Criterion, Throughput};
use reuselens_bench::{criterion_group, criterion_main};
use reuselens::statics::{compute_formulas, StaticAnalysis};
use reuselens::trace::{Executor, NullSink};
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};

fn bench_static_analysis(c: &mut Criterion) {
    let sweep = build_sweep(&SweepConfig::new(8));
    let sweep_exec = Executor::new(&sweep.program).run(&mut NullSink).unwrap();
    let gtc = build_gtc(&GtcConfig::new(128, 4));
    let gtc_exec = {
        let mut e = Executor::new(&gtc.program);
        for (a, d) in &gtc.index_arrays {
            e.set_index_array(*a, d.clone());
        }
        e.run(&mut NullSink).unwrap()
    };

    let mut g = c.benchmark_group("static_analysis");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(
        sweep.program.references().len() as u64,
    ));
    g.bench_function("formulas_sweep3d", |b| {
        b.iter(|| compute_formulas(&sweep.program).len())
    });
    g.bench_function("full_sweep3d", |b| {
        b.iter(|| {
            StaticAnalysis::analyze(&sweep.program, &sweep_exec)
                .groups
                .len()
        })
    });
    g.throughput(Throughput::Elements(gtc.program.references().len() as u64));
    g.bench_function("full_gtc", |b| {
        b.iter(|| StaticAnalysis::analyze(&gtc.program, &gtc_exec).groups.len())
    });
    g.finish();
}

criterion_group!(benches, bench_static_analysis);
criterion_main!(benches);
