//! End-to-end pipeline benchmarks: the full locality analysis (execute +
//! multi-granularity reuse measurement + miss prediction + static analysis
//! + attribution) on the two paper workloads.

use std::time::Duration;
use reuselens_bench::harness::{Criterion, Throughput};
use reuselens_bench::{criterion_group, criterion_main};
use reuselens::cache::MemoryHierarchy;
use reuselens::metrics::run_locality_analysis;
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let h = MemoryHierarchy::itanium2_scaled(16);
    let mut g = c.benchmark_group("end_to_end");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    let sweep = build_sweep(&SweepConfig::new(8));
    g.throughput(Throughput::Elements(8 * 8 * 8));
    g.bench_function("sweep3d_mesh8", |b| {
        b.iter(|| {
            run_locality_analysis(&sweep.program, &h, sweep.index_arrays.clone())
                .unwrap()
                .report
                .accesses
        })
    });

    let gtc = build_gtc(&GtcConfig::new(128, 4));
    g.throughput(Throughput::Elements(128 * 4));
    g.bench_function("gtc_128x4", |b| {
        b.iter(|| {
            run_locality_analysis(&gtc.program, &h, gtc.index_arrays.clone())
                .unwrap()
                .report
                .accesses
        })
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
