//! Online vs capture-once / replay-many on the kernels workload.
//!
//! The scenario is the paper's design-space sweep: measure reuse at two
//! granularities (cache line + page) and score four candidate cache
//! hierarchies. Three pipelines are compared:
//!
//! * `per_config_online` — the pre-buffer flow: [`evaluate_program`] per
//!   hierarchy, so the program is re-interpreted and re-analyzed for every
//!   configuration.
//! * `shared_online` — one online analysis, then the four configurations
//!   scored sequentially from the shared profiles.
//! * `capture_parallel` — the capture-once engine: one interpretation into
//!   a compact [`TraceBuffer`](reuselens::trace::TraceBuffer), one replay
//!   thread per grain, one scoring thread per configuration.
//!
//! Run with `cargo bench -p reuselens-bench --bench replay`. The final
//! line prints the measured end-to-end speedup of `capture_parallel` over
//! `per_config_online` for the 2-grain + 4-config sweep; on a multi-core
//! host the parallel replay adds to the capture-once amortization.

use reuselens::cache::{evaluate_program, evaluate_sweep, MemoryHierarchy};
use reuselens::core::{analyze_buffer, analyze_program, capture_program, AnalysisResult};
use reuselens::workloads::kernels::random_gather;
use reuselens::workloads::BuiltWorkload;
use reuselens_bench::harness::{Criterion, Throughput};
use reuselens_bench::{criterion_group, criterion_main};
use std::time::{Duration, Instant};

/// Cache-line + page granularity of the Itanium2 hierarchy presets.
const GRAINS: [u64; 2] = [128, 16 * 1024];

fn hierarchies() -> Vec<MemoryHierarchy> {
    [4u64, 8, 16, 32].map(MemoryHierarchy::itanium2_scaled).into()
}

fn workload() -> BuiltWorkload {
    // Large enough that analysis dominates interpretation, with the tree
    // churn of an irregular access stream.
    random_gather(1 << 14, 1 << 16, 2, 7)
}

/// Pre-buffer flow: every configuration re-executes and re-analyzes.
fn per_config_online(w: &BuiltWorkload, hs: &[MemoryHierarchy]) -> f64 {
    hs.iter()
        .map(|h| {
            let (report, _) = evaluate_program(&w.program, h, w.index_arrays.clone()).unwrap();
            report.timing.total()
        })
        .sum()
}

/// One online analysis, configurations scored sequentially from it.
fn shared_online(w: &BuiltWorkload, hs: &[MemoryHierarchy]) -> f64 {
    let analysis = analyze_program(&w.program, &GRAINS, w.index_arrays.clone()).unwrap();
    hs.iter()
        .map(|h| reuselens::cache::report_from_analysis(&analysis, h).timing.total())
        .sum()
}

/// Capture + parallel replay: one interpretation into the buffer, one
/// replay thread per grain, one scoring thread per configuration.
fn capture_parallel(w: &BuiltWorkload, hs: &[MemoryHierarchy]) -> f64 {
    let (buffer, report) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
    let (profiles, _timings) = analyze_buffer(&w.program, &buffer, &GRAINS).unwrap();
    let analysis = AnalysisResult {
        profiles,
        exec: report,
    };
    let (reports, _timings) = evaluate_sweep(&analysis, hs).unwrap();
    reports.iter().map(|r| r.timing.total()).sum()
}

fn bench_replay(c: &mut Criterion) {
    let w = workload();
    let hs = hierarchies();
    let accesses = 2 * (1u64 << 16) * GRAINS.len() as u64;
    let mut g = c.benchmark_group("replay");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(4));
    g.sample_size(10);
    g.throughput(Throughput::Elements(accesses));
    g.bench_function("per_config_online_2grain_4config", |b| {
        b.iter(|| per_config_online(&w, &hs))
    });
    g.bench_function("shared_online_2grain_4config", |b| b.iter(|| shared_online(&w, &hs)));
    g.bench_function("capture_parallel_2grain_4config", |b| {
        b.iter(|| capture_parallel(&w, &hs))
    });
    g.finish();

    // Direct apples-to-apples speedup measurement over a few repetitions.
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(per_config_online(&w, &hs));
    }
    let online_wall = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(capture_parallel(&w, &hs));
    }
    let parallel_wall = t1.elapsed();
    let speedup = online_wall.as_secs_f64() / parallel_wall.as_secs_f64();
    println!(
        "replay/speedup: {speedup:.2}x (per-config online {:.1} ms vs capture+parallel {:.1} ms, \
         2 grains x 4 configs)",
        online_wall.as_secs_f64() * 1e3 / reps as f64,
        parallel_wall.as_secs_f64() * 1e3 / reps as f64,
    );
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
