//! Overhead of the observability layer on the replay hot path.
//!
//! The obs design promise is "zero cost when disabled, bounded cost when
//! enabled": instrumentation reports bulk deltas (per grain / per buffer),
//! never per event, so an installed recorder should cost a handful of
//! atomic operations per replay. This bench measures the multi-grain
//! replay of a captured gather trace with no recorder installed and with
//! a `MetricsRecorder` installed, and prints the ratio. The target is
//! enabled ≤ 1.10x disabled; the figure is printed, not gated, because a
//! loaded CI host can wobble any wall-clock ratio.
//!
//! Run with `cargo bench -p reuselens-bench --bench obs_overhead`.

use reuselens::core::analyze_buffer;
use reuselens::core::capture_program;
use reuselens::obs::{self, MetricsRecorder};
use reuselens::workloads::kernels::random_gather;
use reuselens_bench::harness::Criterion;
use reuselens_bench::{criterion_group, criterion_main};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GRAINS: [u64; 2] = [128, 16 * 1024];

/// Best-of-`reps` wall time of a full multi-grain replay.
fn best_replay_wall(
    program: &reuselens::ir::Program,
    buffer: &reuselens::trace::TraceBuffer,
    reps: usize,
) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(analyze_buffer(program, buffer, &GRAINS).unwrap());
            t.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let w = random_gather(1 << 13, 1 << 15, 2, 7);
    let (buffer, _) = capture_program(&w.program, w.index_arrays.clone()).unwrap();

    let mut g = c.benchmark_group("obs_overhead");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.bench_function("replay_2grain_disabled", |b| {
        b.iter(|| analyze_buffer(&w.program, &buffer, &GRAINS).unwrap())
    });
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    g.bench_function("replay_2grain_enabled", |b| {
        b.iter(|| analyze_buffer(&w.program, &buffer, &GRAINS).unwrap())
    });
    obs::uninstall();
    g.finish();

    // Direct best-of comparison for the printed overhead figure: best-of
    // minimizes scheduler noise, which matters more than the mean when the
    // expected delta is a few atomic ops per grain.
    let reps = 5;
    let disabled = best_replay_wall(&w.program, &buffer, reps);
    obs::install(Arc::new(MetricsRecorder::new()));
    let enabled = best_replay_wall(&w.program, &buffer, reps);
    obs::uninstall();
    let ratio = enabled.as_secs_f64() / disabled.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "obs_overhead/ratio: {ratio:.3}x (disabled {:.2} ms, enabled {:.2} ms; target <= 1.10x, \
         informational)",
        disabled.as_secs_f64() * 1e3,
        enabled.as_secs_f64() * 1e3,
    );

    // Track the figure across PRs: merge it into BENCH_reuselens.json
    // (repo root, or $BENCH_JSON) instead of leaving it stdout-only.
    let bench_json = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reuselens.json").to_string()
    });
    match reuselens_bench::report::record_overhead_ratio(std::path::Path::new(&bench_json), ratio)
    {
        Ok(()) => println!("obs_overhead/ratio recorded in {bench_json}"),
        Err(e) => eprintln!("obs_overhead/ratio not recorded ({bench_json}: {e})"),
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
