//! Analyzer-core microbenchmarks: event throughput of the online
//! reuse-distance analyzer, and ablations of its two hot data structures
//! (order-statistic tree, hierarchical block table).

use std::time::Duration;
use reuselens_bench::harness::{BenchmarkId, Criterion, Throughput};
use reuselens_bench::{criterion_group, criterion_main};
use reuselens::core::{BlockTable, OrderStatTree, ReuseAnalyzer};
use reuselens::ir::{AccessKind, RefId};
use reuselens::trace::{Executor, NullSink, TraceSink};
use reuselens::workloads::kernels::{random_gather, streaming};

fn bench_analyzer_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer_throughput");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for &elems in &[1u64 << 12, 1 << 14, 1 << 16] {
        let w = streaming(elems, 4);
        let accesses = elems * 4;
        g.throughput(Throughput::Elements(accesses));
        g.bench_with_input(BenchmarkId::new("streaming", elems), &w, |b, w| {
            b.iter(|| {
                let mut an = ReuseAnalyzer::new(&w.program, 64);
                Executor::new(&w.program).run(&mut an).unwrap();
                an.finish().total_accesses
            })
        });
    }
    for &table in &[1u64 << 12, 1 << 16] {
        let w = random_gather(table, 1 << 14, 2, 7);
        g.throughput(Throughput::Elements(2 << 14));
        g.bench_with_input(BenchmarkId::new("random_gather", table), &w, |b, w| {
            b.iter(|| {
                let mut an = ReuseAnalyzer::new(&w.program, 64);
                let mut exec = Executor::new(&w.program);
                for (a, d) in &w.index_arrays {
                    exec.set_index_array(*a, d.clone());
                }
                exec.run(&mut an).unwrap();
                an.finish().total_accesses
            })
        });
    }
    g.finish();
}

fn bench_executor_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_only");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let w = streaming(1 << 16, 4);
    g.throughput(Throughput::Elements(4 << 16));
    g.bench_function("streaming_null_sink", |b| {
        b.iter(|| {
            Executor::new(&w.program)
                .run(&mut NullSink)
                .unwrap()
                .accesses
        })
    });
    g.finish();
}

fn bench_ostree(c: &mut Criterion) {
    let mut g = c.benchmark_group("ostree");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for &n in &[1u64 << 10, 1 << 14] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("churn", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = OrderStatTree::with_capacity(n as usize);
                for k in 0..n {
                    t.insert(k);
                }
                let mut acc = 0u64;
                for k in 0..n {
                    acc += t.count_greater(k);
                    t.remove(k);
                    t.insert(n + k);
                }
                acc
            })
        });
        // The same churn through the fused reinsert (the analyzer's path).
        g.bench_with_input(BenchmarkId::new("churn_fused", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = OrderStatTree::with_capacity(n as usize);
                for k in 0..n {
                    t.insert(k);
                }
                let mut acc = 0u64;
                for k in 0..n {
                    acc += t.count_greater(k);
                    t.reinsert(k, n + k);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_blocktable(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktable");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    let n = 1u64 << 16;
    g.throughput(Throughput::Elements(n));
    g.bench_function("set_get_dense", |b| {
        b.iter(|| {
            let mut t = BlockTable::new();
            for k in 0..n {
                t.set(k, k + 1, 0);
            }
            let mut acc = 0u64;
            for k in 0..n {
                acc += t.get(k).unwrap().time;
            }
            acc
        })
    });
    g.finish();
}

/// The analyzer as a raw sink (no executor): isolates per-event cost.
fn bench_analyzer_sink(c: &mut Criterion) {
    let w = streaming(4, 1);
    let n = 1u64 << 16;
    let mut g = c.benchmark_group("analyzer_sink");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(n));
    g.bench_function("sequential_addresses", |b| {
        b.iter(|| {
            let mut an = ReuseAnalyzer::new(&w.program, 64);
            for k in 0..n {
                an.access(RefId(0), k * 8 % (1 << 18), 8, AccessKind::Load);
            }
            an.accesses()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_analyzer_throughput,
    bench_executor_only,
    bench_ostree,
    bench_blocktable,
    bench_analyzer_sink
);
criterion_main!(benches);
