//! Shared support for the paper-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. The memory hierarchy is the Itanium2 preset scaled down by
//! `REPRO_SCALE` (default 16), matching the CI-sized meshes the harnesses
//! run: shrinking caches and working sets by the same factor preserves
//! every crossover the figures show. Set `REPRO_SCALE=1` and grow the
//! sizes for a full-scale run.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;
pub mod json;
pub mod report;

use reuselens::cache::MemoryHierarchy;

/// The hierarchy every repro binary predicts for: Itanium2 divided by
/// `REPRO_SCALE` (default 16).
pub fn hierarchy() -> MemoryHierarchy {
    let scale = std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(16);
    if scale <= 1 {
        MemoryHierarchy::itanium2()
    } else {
        MemoryHierarchy::itanium2_scaled(scale)
    }
}

/// Renders one aligned table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:>w$}  ", w = w));
    }
    out.trim_end().to_string()
}

/// Renders a CSV line.
pub fn csv(cells: &[String]) -> String {
    cells.join(",")
}

/// Formats a float compactly for tables.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Renders multiple labeled series as a compact ASCII chart: one row per
/// series, one glyph per x-position, heights normalized to the global
/// maximum. Good enough to *see* the crossovers the paper's figures show
/// without leaving the terminal.
pub fn ascii_chart(title: &str, xs: &[String], series: &[(String, Vec<f64>)]) -> String {
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(0.0f64, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(8);
    let mut out = format!("{title} (bar height ∝ value, max {max:.3})\n");
    for (label, ys) in series {
        out.push_str(&format!("{label:<label_w$} "));
        for &y in ys {
            let idx = if max <= 0.0 {
                0
            } else {
                ((y / max) * (GLYPHS.len() - 1) as f64).round() as usize
            };
            out.push(GLYPHS[idx.min(GLYPHS.len() - 1)]);
        }
        if let Some(last) = ys.last() {
            out.push_str(&format!("  ({last:.3})"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<label_w$} ", "x:"));
    out.push_str(&xs.join(","));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_defaults_to_scaled_itanium2() {
        let h = hierarchy();
        assert!(h.name.starts_with("Itanium2"));
        assert_eq!(h.levels.len(), 2);
    }

    #[test]
    fn ascii_chart_scales_to_max() {
        let xs: Vec<String> = ["8", "16"].iter().map(|s| s.to_string()).collect();
        let chart = ascii_chart(
            "demo",
            &xs,
            &[
                ("hi".to_string(), vec![1.0, 2.0]),
                ("lo".to_string(), vec![0.0, 1.0]),
            ],
        );
        assert!(chart.contains('█')); // the global max renders full height
        assert!(chart.contains("demo"));
        assert!(chart.contains("8,16"));
        // Empty series / all-zero data must not divide by zero.
        let flat = ascii_chart("z", &xs, &[("z".to_string(), vec![0.0, 0.0])]);
        assert!(flat.contains("(0.000)"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(42.25), "42.2");
        assert_eq!(num(1.5), "1.500");
        assert_eq!(csv(&["a".into(), "b".into()]), "a,b");
        assert_eq!(row(&["x".into()], &[3]), "  x");
    }
}
