//! The machine-readable bench report (`BENCH_reuselens.json`) and its
//! baseline diff.
//!
//! ## Schema (`reuselens-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "reuselens-bench/v1",
//!   "throughput_events_per_second": 12345678.9,
//!   "obs_overhead_ratio": 1.04,
//!   "sampled_speedup_ratio": 4.2,
//!   "runs": [
//!     {
//!       "workload": "sweep3d",
//!       "grains": 4,
//!       "events": 1048576,
//!       "wall_seconds": 0.123,
//!       "throughput_events_per_second": 3456789.0,
//!       "stage_seconds": {
//!         "capture": { "sum": 0.01, "max": 0.01 },
//!         "replay":  { "sum": 0.12, "max": 0.12 }
//!       }
//!     }
//!   ],
//!   "counters": { "events_captured": 1048576 }
//! }
//! ```
//!
//! * `throughput_events_per_second` (top level) is the headline figure the
//!   regression gate compares: total events replayed across every run
//!   divided by total replay wall seconds.
//! * `obs_overhead_ratio` is enabled/disabled replay wall time — the
//!   enabled leg runs with a `MetricsRecorder` installed **and the live
//!   telemetry service on**: the background aggregator ticking and an
//!   HTTP client scraping `/metrics` once per second, the shape of a
//!   watched production run (target ≤ [`OBS_OVERHEAD_CEILING`]); `null`
//!   until measured. The bench-runner gate fails full (non-smoke) runs
//!   above the ceiling, and [`diff`] flags a >15% *rise* against a
//!   measured baseline ratio (lower is better, so the gate is inverted
//!   relative to the throughput lines). `benches/obs_overhead.rs` also
//!   writes its measured ratio here via [`record_overhead_ratio`], so
//!   the figure is tracked across PRs.
//! * `sampled_speedup_ratio` is exact-mode replay wall time divided by
//!   sampled-mode (rate 1/100) replay wall time on the largest Sweep3D
//!   ladder rung (target ≥ 3x); `null` until measured.
//! * `single_grain_speedup_ratio` is the single-grain Sweep3D throughput
//!   of the best replay-thread ladder rung divided by the frozen
//!   pre-optimization `ReferenceAnalyzer` baseline (target ≥
//!   [`SINGLE_GRAIN_SPEEDUP_FLOOR`]); `null` until measured. The
//!   bench-runner gate fails full (non-smoke) runs below the floor, and
//!   [`diff`] flags a >15% drop against a measured baseline ratio.
//! * `checkpoint_overhead_ratio` is checkpointed/plain serial replay wall
//!   time on the single-grain Sweep3D workload, snapshotting four times
//!   over the run (target ≤ [`CHECKPOINT_OVERHEAD_CEILING`]); `null`
//!   until measured. The bench-runner gate fails full (non-smoke) runs
//!   above the ceiling; the ratio is an absolute bar, not diffed against
//!   the baseline (unlike `obs_overhead_ratio`, which is both).
//! * `estimator_speedup_ratio` is full-trace replay wall time divided by
//!   the zero-trace symbolic estimator's wall time over the same grain
//!   set on Sweep3D (target ≥ [`ESTIMATOR_SPEEDUP_FLOOR`]); `null` until
//!   measured. The bench-runner gate fails full (non-smoke) runs below
//!   the floor; like `checkpoint_overhead_ratio` it is an absolute bar,
//!   not diffed against the baseline.
//! * `store_replay_speedup_ratio` is the wall time to obtain a
//!   replay-ready Sweep3D `TraceBuffer` by capturing the workload from
//!   scratch divided by the wall time to load the same trace from the
//!   on-disk store (read + validate + decode + checkpoint rebuild). The
//!   replay that follows is bit-identical either way
//!   (`tests/store_identity.rs`), so the acquisition cost *is* the
//!   capture-once/replay-many win the store banks per later session
//!   (target ≥ [`STORE_REPLAY_SPEEDUP_FLOOR`]); `null` until measured.
//!   The bench-runner gate fails full (non-smoke) runs below the floor;
//!   an absolute bar, not diffed against the baseline.
//! * `runs[]` each hold one workload × grain-count measurement;
//!   `stage_seconds` is the pipeline stage wall-time breakdown from the
//!   run's `MetricsRecorder` snapshot and `events` counts events replayed
//!   **per grain** (every grain replays the full captured stream).
//!
//!   **Schema change (this PR):** each `stage_seconds` entry is now an
//!   object `{ "sum": S, "max": M }` instead of a bare number. `sum` is
//!   the old value — wall seconds summed over every span of the stage —
//!   and `max` is the longest single span. The distinction matters once
//!   partitioned replay runs spans *concurrently*: `sum` over partition
//!   workers overstates wall time, `max` approximates the critical path.
//!   The schema tag stays `reuselens-bench/v1`: readers written for the
//!   old shape ignore the object, and [`BenchReport::from_json`] still
//!   accepts legacy bare-number entries (parsed as `sum = max = value`)
//!   so pre-change baselines keep diffing.
//! * `counters` is the final counter snapshot across all runs.
//!
//! [`diff`] compares two reports and flags any throughput drop beyond
//! [`REGRESSION_THRESHOLD`] (15%) — headline and per-run; the bench-runner
//! binary exits nonzero when the diff regresses.

use crate::json::{self, Json};

/// Identifies the report layout; bump when the schema changes shape.
pub const SCHEMA: &str = "reuselens-bench/v1";

/// Fractional throughput drop that counts as a regression (>15%).
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// Acceptance floor for `single_grain_speedup_ratio` on full bench runs:
/// the optimized single-grain replay (best ladder rung) must be at least
/// this many times faster than the frozen pre-optimization baseline.
pub const SINGLE_GRAIN_SPEEDUP_FLOOR: f64 = 5.0;

/// Acceptance ceiling for `obs_overhead_ratio` on full bench runs:
/// replaying with the recorder installed, the aggregator ticking, and an
/// HTTP client scraping `/metrics` once per second must cost at most 10%
/// over the same replay fully dark.
pub const OBS_OVERHEAD_CEILING: f64 = 1.10;

/// Acceptance ceiling for `checkpoint_overhead_ratio` on full bench runs:
/// replaying with periodic snapshots must cost at most 10% over a plain
/// serial replay of the same grain.
pub const CHECKPOINT_OVERHEAD_CEILING: f64 = 1.10;

/// Acceptance floor for `estimator_speedup_ratio` on full bench runs: the
/// symbolic estimator's whole value proposition is skipping the trace, so
/// it must beat full-trace replay on Sweep3D by at least this factor.
pub const ESTIMATOR_SPEEDUP_FLOOR: f64 = 100.0;

/// Acceptance floor for `store_replay_speedup_ratio` on full bench runs:
/// loading a stored trace into a replay-ready buffer must beat
/// re-capturing the workload from scratch by at least this factor, or
/// persisting traces is not paying for itself.
pub const STORE_REPLAY_SPEEDUP_FLOOR: f64 = 2.0;

/// Wall seconds of one pipeline stage across a run, both ways of adding
/// spans up (see the module docs on the `stage_seconds` schema change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSeconds {
    /// Seconds summed over every span of the stage.
    pub sum: f64,
    /// Seconds of the longest single span.
    pub max: f64,
}

/// One workload × grain-count measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Workload name (`"sweep3d"`, `"gtc"`).
    pub workload: String,
    /// How many grains (block sizes) the replay analyzed in parallel.
    pub grains: u64,
    /// Events replayed per grain (the captured stream length).
    pub events: u64,
    /// Wall seconds for the full multi-grain replay (best of reps).
    pub wall_seconds: f64,
    /// Pipeline stage wall-time breakdown, `(stage name, seconds)`.
    pub stage_seconds: Vec<(String, StageSeconds)>,
}

impl BenchRun {
    /// Replayed events per second across all of this run's grains.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            (self.events * self.grains) as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// A stable key for matching runs between baseline and current.
    fn key(&self) -> (String, u64) {
        (self.workload.clone(), self.grains)
    }
}

/// The full report: runs, counter snapshot, and headline figures.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Per-measurement rows.
    pub runs: Vec<BenchRun>,
    /// Final counter snapshot, `(counter name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Enabled/disabled replay ratio from the obs-overhead measurement.
    pub obs_overhead_ratio: Option<f64>,
    /// Exact/sampled replay wall-time ratio from the sampled ladder rung.
    pub sampled_speedup_ratio: Option<f64>,
    /// Best-rung single-grain throughput over the frozen pre-optimization
    /// baseline (see the module docs).
    pub single_grain_speedup_ratio: Option<f64>,
    /// Checkpointed/plain serial replay wall-time ratio (see the module
    /// docs); gated against [`CHECKPOINT_OVERHEAD_CEILING`] on full runs.
    pub checkpoint_overhead_ratio: Option<f64>,
    /// Full-trace replay over zero-trace symbolic estimation wall-time
    /// ratio (see the module docs); gated against
    /// [`ESTIMATOR_SPEEDUP_FLOOR`] on full runs.
    pub estimator_speedup_ratio: Option<f64>,
    /// Capture-from-scratch over load-from-store wall-time ratio for
    /// obtaining a replay-ready buffer (see the module docs); gated
    /// against [`STORE_REPLAY_SPEEDUP_FLOOR`] on full runs.
    pub store_replay_speedup_ratio: Option<f64>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> BenchReport {
        BenchReport {
            runs: Vec::new(),
            counters: Vec::new(),
            obs_overhead_ratio: None,
            sampled_speedup_ratio: None,
            single_grain_speedup_ratio: None,
            checkpoint_overhead_ratio: None,
            estimator_speedup_ratio: None,
            store_replay_speedup_ratio: None,
        }
    }

    /// Headline throughput: total events replayed across all runs per
    /// total replay wall second.
    pub fn throughput(&self) -> f64 {
        let events: u64 = self.runs.iter().map(|r| r.events * r.grains).sum();
        let wall: f64 = self.runs.iter().map(|r| r.wall_seconds).sum();
        if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        }
    }

    /// Renders the report as schema-`v1` pretty JSON.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|run| {
                let stages = run
                    .stage_seconds
                    .iter()
                    .map(|(name, secs)| {
                        (
                            name.clone(),
                            Json::Obj(vec![
                                ("sum".into(), Json::Num(secs.sum)),
                                ("max".into(), Json::Num(secs.max)),
                            ]),
                        )
                    })
                    .collect();
                Json::Obj(vec![
                    ("workload".into(), Json::Str(run.workload.clone())),
                    ("grains".into(), Json::Num(run.grains as f64)),
                    ("events".into(), Json::Num(run.events as f64)),
                    ("wall_seconds".into(), Json::Num(run.wall_seconds)),
                    (
                        "throughput_events_per_second".into(),
                        Json::Num(run.throughput()),
                    ),
                    ("stage_seconds".into(), Json::Obj(stages)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::Num(*value as f64)))
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            (
                "throughput_events_per_second".into(),
                Json::Num(self.throughput()),
            ),
            (
                "obs_overhead_ratio".into(),
                match self.obs_overhead_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ),
            (
                "sampled_speedup_ratio".into(),
                match self.sampled_speedup_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ),
            (
                "single_grain_speedup_ratio".into(),
                match self.single_grain_speedup_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ),
            (
                "checkpoint_overhead_ratio".into(),
                match self.checkpoint_overhead_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ),
            (
                "estimator_speedup_ratio".into(),
                match self.estimator_speedup_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ),
            (
                "store_replay_speedup_ratio".into(),
                match self.store_replay_speedup_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ),
            ("runs".into(), Json::Arr(runs)),
            ("counters".into(), Json::Obj(counters)),
        ])
        .render_pretty()
    }

    /// Parses a schema-`v1` report.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a wrong/missing `schema`
    /// tag, or missing required run fields.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?}, expected {SCHEMA:?}"));
        }
        let mut runs = Vec::new();
        for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
            let field = |key: &str| -> Result<f64, String> {
                run.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("run missing numeric {key:?}"))
            };
            let stage_seconds = match run.get("stage_seconds") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .filter_map(|(k, v)| {
                        // Current form: { "sum": S, "max": M }. Legacy
                        // form (pre-partitioned-replay): a bare number,
                        // read as sum = max = value.
                        let secs = match v {
                            Json::Obj(_) => StageSeconds {
                                sum: v.get("sum").and_then(Json::as_f64)?,
                                max: v.get("max").and_then(Json::as_f64)?,
                            },
                            _ => {
                                let n = v.as_f64()?;
                                StageSeconds { sum: n, max: n }
                            }
                        };
                        Some((k.clone(), secs))
                    })
                    .collect(),
                _ => Vec::new(),
            };
            runs.push(BenchRun {
                workload: run
                    .get("workload")
                    .and_then(Json::as_str)
                    .ok_or("run missing workload")?
                    .to_string(),
                grains: field("grains")? as u64,
                events: field("events")? as u64,
                wall_seconds: field("wall_seconds")?,
                stage_seconds,
            });
        }
        let counters = match doc.get("counters") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n as u64)))
                .collect(),
            _ => Vec::new(),
        };
        Ok(BenchReport {
            runs,
            counters,
            obs_overhead_ratio: doc.get("obs_overhead_ratio").and_then(Json::as_f64),
            sampled_speedup_ratio: doc.get("sampled_speedup_ratio").and_then(Json::as_f64),
            single_grain_speedup_ratio: doc
                .get("single_grain_speedup_ratio")
                .and_then(Json::as_f64),
            checkpoint_overhead_ratio: doc
                .get("checkpoint_overhead_ratio")
                .and_then(Json::as_f64),
            estimator_speedup_ratio: doc
                .get("estimator_speedup_ratio")
                .and_then(Json::as_f64),
            store_replay_speedup_ratio: doc
                .get("store_replay_speedup_ratio")
                .and_then(Json::as_f64),
        })
    }
}

impl Default for BenchReport {
    fn default() -> BenchReport {
        BenchReport::new()
    }
}

/// One throughput comparison between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// What is compared: `"overall"` or `"<workload>/<grains>"`.
    pub subject: String,
    /// Baseline events/s.
    pub baseline: f64,
    /// Current events/s.
    pub current: f64,
    /// `current/baseline - 1` (negative = slower).
    pub delta: f64,
    /// True when the drop exceeds [`REGRESSION_THRESHOLD`].
    pub regressed: bool,
}

/// The result of diffing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// Per-subject comparisons, overall first.
    pub lines: Vec<DiffLine>,
    /// True when any subject regressed.
    pub regressed: bool,
}

impl DiffOutcome {
    /// Renders the diff as an aligned human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} {:>16} {:>16} {:>9}  verdict\n",
            "subject", "baseline ev/s", "current ev/s", "delta"
        );
        for line in &self.lines {
            out.push_str(&format!(
                "{:<24} {:>16.0} {:>16.0} {:>+8.1}%  {}\n",
                line.subject,
                line.baseline,
                line.current,
                line.delta * 100.0,
                if line.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        out
    }
}

fn compare(subject: &str, baseline: f64, current: f64) -> DiffLine {
    let delta = if baseline > 0.0 {
        current / baseline - 1.0
    } else {
        0.0
    };
    DiffLine {
        subject: subject.to_string(),
        baseline,
        current,
        delta,
        regressed: baseline > 0.0 && current < baseline * (1.0 - REGRESSION_THRESHOLD),
    }
}

/// [`compare`] for lower-is-better ratios (overheads): the line regresses
/// when the current value *rises* more than [`REGRESSION_THRESHOLD`]
/// above the baseline. `delta` keeps its `current/baseline - 1` meaning,
/// so a positive delta here reads as "overhead grew".
fn compare_lower_is_better(subject: &str, baseline: f64, current: f64) -> DiffLine {
    let delta = if baseline > 0.0 {
        current / baseline - 1.0
    } else {
        0.0
    };
    DiffLine {
        subject: subject.to_string(),
        baseline,
        current,
        delta,
        regressed: baseline > 0.0 && current > baseline * (1.0 + REGRESSION_THRESHOLD),
    }
}

/// Compares `current` against `baseline`: the overall throughput plus
/// every run present in both (matched by workload × grain count). A drop
/// beyond [`REGRESSION_THRESHOLD`] on any line marks the outcome
/// regressed; runs only one side measured are ignored (workload sets may
/// change between PRs).
pub fn diff(baseline: &BenchReport, current: &BenchReport) -> DiffOutcome {
    let mut lines = vec![compare("overall", baseline.throughput(), current.throughput())];
    for base_run in &baseline.runs {
        if let Some(cur_run) = current.runs.iter().find(|r| r.key() == base_run.key()) {
            lines.push(compare(
                &format!("{}/{}", base_run.workload, base_run.grains),
                base_run.throughput(),
                cur_run.throughput(),
            ));
        }
    }
    // The single-grain speedup is gated like a throughput line: a >15%
    // drop against a measured baseline ratio regresses the diff (the
    // absolute >= SINGLE_GRAIN_SPEEDUP_FLOOR bar is enforced by the
    // bench-runner on full runs).
    if let (Some(base), Some(cur)) = (
        baseline.single_grain_speedup_ratio,
        current.single_grain_speedup_ratio,
    ) {
        lines.push(compare("single_grain_speedup", base, cur));
    }
    // The obs-overhead ratio is gated the same way, inverted: overhead is
    // lower-is-better, so a >15% *rise* against a measured baseline ratio
    // regresses the diff (the absolute <= OBS_OVERHEAD_CEILING bar is
    // enforced by the bench-runner on full runs).
    if let (Some(base), Some(cur)) = (baseline.obs_overhead_ratio, current.obs_overhead_ratio) {
        lines.push(compare_lower_is_better("obs_overhead", base, cur));
    }
    let regressed = lines.iter().any(|l| l.regressed);
    DiffOutcome { lines, regressed }
}

/// Merges a freshly measured obs-overhead ratio into the report at
/// `path`, preserving the rest of the file: parse-modify-rewrite when the
/// file holds a valid report, else start a new one. Used by
/// `benches/obs_overhead.rs` so the ratio lands in `BENCH_reuselens.json`
/// instead of only stdout.
///
/// # Errors
///
/// Returns the I/O error message when the file cannot be written.
pub fn record_overhead_ratio(path: &std::path::Path, ratio: f64) -> Result<(), String> {
    let mut report = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| BenchReport::from_json(&text).ok())
        .unwrap_or_default();
    report.obs_overhead_ratio = Some(ratio);
    std::fs::write(path, report.to_json()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(workload: &str, grains: u64, events: u64, wall: f64) -> BenchRun {
        BenchRun {
            workload: workload.to_string(),
            grains,
            events,
            wall_seconds: wall,
            stage_seconds: vec![(
                "replay".to_string(),
                StageSeconds { sum: wall, max: wall },
            )],
        }
    }

    fn report(runs: Vec<BenchRun>) -> BenchReport {
        BenchReport {
            runs,
            counters: vec![("events_decoded".to_string(), 12345)],
            obs_overhead_ratio: Some(1.05),
            sampled_speedup_ratio: Some(4.2),
            single_grain_speedup_ratio: Some(6.1),
            checkpoint_overhead_ratio: Some(1.03),
            estimator_speedup_ratio: Some(240.0),
            store_replay_speedup_ratio: Some(3.4),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let original = report(vec![run("sweep3d", 4, 1 << 20, 0.25), run("gtc", 2, 4096, 0.01)]);
        let text = original.to_json();
        assert!(text.contains("\"schema\": \"reuselens-bench/v1\""));
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(BenchReport::from_json("{\"schema\":\"other/v9\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{}").is_err());
    }

    #[test]
    fn diff_accepts_small_wobble() {
        let base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        // 10% slower: within the 15% gate.
        let cur = report(vec![run("sweep3d", 4, 1000, 1.0 / 0.9)]);
        let outcome = diff(&base, &cur);
        assert!(!outcome.regressed);
        assert!(outcome.lines.iter().all(|l| !l.regressed));
    }

    #[test]
    fn diff_flags_a_synthetic_20_percent_slowdown() {
        let base = report(vec![run("sweep3d", 4, 1000, 1.0), run("gtc", 2, 1000, 1.0)]);
        // sweep3d/4 replays the same events in 25% more time: a 20%
        // throughput drop, past the 15% gate.
        let cur = report(vec![run("sweep3d", 4, 1000, 1.25), run("gtc", 2, 1000, 1.0)]);
        let outcome = diff(&base, &cur);
        assert!(outcome.regressed);
        let line = outcome
            .lines
            .iter()
            .find(|l| l.subject == "sweep3d/4")
            .unwrap();
        assert!(line.regressed);
        assert!((line.delta + 0.2).abs() < 1e-9);
        // gtc is unchanged and stays green.
        assert!(!outcome.lines.iter().find(|l| l.subject == "gtc/2").unwrap().regressed);
        assert!(outcome.render().contains("REGRESSED"));
    }

    #[test]
    fn diff_ignores_runs_missing_from_either_side() {
        let base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        let cur = report(vec![run("sweep3d", 8, 1000, 1.0)]);
        let outcome = diff(&base, &cur);
        // No matched runs: just the overall line and the two gated ratio
        // lines (both sides of the fixture measure both ratios).
        assert_eq!(outcome.lines.len(), 3);
        assert!(outcome.lines.iter().all(|l| {
            l.subject == "overall"
                || l.subject == "single_grain_speedup"
                || l.subject == "obs_overhead"
        }));
    }

    #[test]
    fn from_json_accepts_legacy_bare_number_stage_seconds() {
        let legacy = r#"{
          "schema": "reuselens-bench/v1",
          "runs": [{"workload": "sweep3d", "grains": 4, "events": 1000,
                    "wall_seconds": 0.5, "stage_seconds": {"replay": 0.5}}]
        }"#;
        let parsed = BenchReport::from_json(legacy).unwrap();
        assert_eq!(
            parsed.runs[0].stage_seconds,
            vec![("replay".to_string(), StageSeconds { sum: 0.5, max: 0.5 })]
        );
        assert_eq!(parsed.single_grain_speedup_ratio, None);
        assert_eq!(parsed.checkpoint_overhead_ratio, None);
        assert_eq!(parsed.estimator_speedup_ratio, None);
        assert_eq!(parsed.store_replay_speedup_ratio, None);
    }

    #[test]
    fn estimator_speedup_ratio_round_trips_and_is_not_diffed() {
        let mut base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        base.estimator_speedup_ratio = Some(350.0);
        let parsed = BenchReport::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed.estimator_speedup_ratio, Some(350.0));
        // Absolute gate, not a baseline diff: a big swing in the measured
        // ratio must not regress the diff (the bench-runner's floor check
        // owns that failure on full runs).
        let mut cur = base.clone();
        cur.estimator_speedup_ratio = Some(120.0);
        assert!(!diff(&base, &cur).regressed);
    }

    #[test]
    fn store_replay_speedup_ratio_round_trips_and_is_not_diffed() {
        let mut base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        base.store_replay_speedup_ratio = Some(4.2);
        let parsed = BenchReport::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed.store_replay_speedup_ratio, Some(4.2));
        // Absolute gate, not a baseline diff: the bench-runner's floor
        // check owns failures on full runs.
        let mut cur = base.clone();
        cur.store_replay_speedup_ratio = Some(2.1);
        assert!(!diff(&base, &cur).regressed);
    }

    #[test]
    fn checkpoint_overhead_ratio_round_trips_and_is_not_diffed() {
        let mut base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        base.checkpoint_overhead_ratio = Some(1.02);
        let parsed = BenchReport::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed.checkpoint_overhead_ratio, Some(1.02));
        // The ratio is an absolute gate, not a baseline diff: a current
        // report measuring far above the baseline ratio must not regress
        // the diff (the bench-runner's ceiling check owns that failure).
        let mut cur = base.clone();
        cur.checkpoint_overhead_ratio = Some(2.5);
        assert!(!diff(&base, &cur).regressed);
    }

    #[test]
    fn diff_gates_single_grain_speedup_ratio() {
        let mut base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        let mut cur = base.clone();
        base.single_grain_speedup_ratio = Some(6.0);
        // 33% drop: past the 15% bar.
        cur.single_grain_speedup_ratio = Some(4.0);
        let outcome = diff(&base, &cur);
        assert!(outcome.regressed);
        assert!(outcome
            .lines
            .iter()
            .any(|l| l.subject == "single_grain_speedup" && l.regressed));
        // An 8% wobble stays green.
        cur.single_grain_speedup_ratio = Some(5.5);
        assert!(!diff(&base, &cur).regressed);
        // An unmeasured side is skipped, not failed.
        cur.single_grain_speedup_ratio = None;
        assert!(!diff(&base, &cur).regressed);
    }

    #[test]
    fn diff_gates_obs_overhead_ratio_lower_is_better() {
        let mut base = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        let mut cur = base.clone();
        base.obs_overhead_ratio = Some(1.00);
        // Overhead grew 20%: past the 15% bar. (The absolute-ceiling
        // check is the bench-runner's; the diff gate fires on the rise
        // alone.)
        cur.obs_overhead_ratio = Some(1.20);
        let outcome = diff(&base, &cur);
        assert!(outcome.regressed);
        let line = outcome
            .lines
            .iter()
            .find(|l| l.subject == "obs_overhead")
            .unwrap();
        assert!(line.regressed);
        assert!((line.delta - 0.2).abs() < 1e-9, "delta: {}", line.delta);
        // A 10% rise is wobble; a *drop* is an improvement, never a
        // regression (the inverted compare must not fire downward).
        cur.obs_overhead_ratio = Some(1.10);
        assert!(!diff(&base, &cur).regressed);
        cur.obs_overhead_ratio = Some(0.80);
        assert!(!diff(&base, &cur).regressed);
        // An unmeasured side is skipped, not failed.
        cur.obs_overhead_ratio = None;
        assert!(!diff(&base, &cur).regressed);
    }

    #[test]
    fn record_overhead_ratio_preserves_existing_runs() {
        let dir = std::env::temp_dir().join(format!(
            "reuselens-bench-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_reuselens.json");
        let original = report(vec![run("sweep3d", 4, 1000, 1.0)]);
        std::fs::write(&path, original.to_json()).unwrap();
        record_overhead_ratio(&path, 1.07).unwrap();
        let updated = BenchReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(updated.obs_overhead_ratio, Some(1.07));
        assert_eq!(updated.runs, original.runs);
        // A missing file yields a fresh ratio-only report.
        let fresh = dir.join("fresh.json");
        record_overhead_ratio(&fresh, 1.02).unwrap();
        let fresh = BenchReport::from_json(&std::fs::read_to_string(&fresh).unwrap()).unwrap();
        assert_eq!(fresh.obs_overhead_ratio, Some(1.02));
        assert!(fresh.runs.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
