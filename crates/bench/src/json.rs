//! A minimal JSON value, parser, and writer.
//!
//! The workspace is fully offline — no serde — and the bench harness only
//! needs to round-trip its own `BENCH_reuselens.json`, so this is a small
//! recursive-descent parser over exactly the JSON grammar plus a writer
//! whose numbers use Rust's shortest-round-trip `f64` display. Object key
//! order is preserved so written files diff cleanly across runs.

use std::fmt;

/// A parsed JSON value. Objects keep insertion order (a `Vec` of pairs,
/// not a map) so rendering is deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for integers up to 2^53,
    /// far beyond anything the bench report stores).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by two spaces per level.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

/// JSON has no NaN/Infinity; render them as null like browsers do.
fn render_number(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else {
        "null".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure: what was wrong and the byte offset it was found at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired here; the bench
                            // report never emits them, so map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let text = r#"{"schema":"reuselens-bench/v1","runs":[{"workload":"sweep3d","grains":4,"throughput":1234.5}],"ok":true,"none":null}"#;
        let doc = parse(text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("reuselens-bench/v1")
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs[0].get("grains").and_then(Json::as_f64), Some(4.0));
        assert_eq!(parse(&doc.render()).unwrap(), doc);
        assert_eq!(parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let doc = parse(r#"{"s":"a\"b\\c\ndA","n":-1.5e3}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(-1500.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_render_shortest_round_trip() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
