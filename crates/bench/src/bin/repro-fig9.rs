//! Reproduces the paper's Figure 9: GTC data arrays ranked by L3 cache
//! misses due to fragmentation of data in cache lines.
//!
//! Paper: the two zion arrays (plus the particle_array alias) account for
//! ~95% of all fragmentation misses, ~48% of their own total misses, and
//! ~13.7% of all L3 misses in the program.

use reuselens::metrics::{format_fragmentation, run_locality_analysis};
use reuselens::workloads::gtc::{build, GtcConfig};
use reuselens_bench::hierarchy;

fn main() {
    let mgrid: u64 = std::env::var("GTC_MGRID")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let micell: u64 = std::env::var("GTC_MICELL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let w = build(&GtcConfig::new(mgrid, micell));
    let la = run_locality_analysis(&w.program, &hierarchy(), w.index_arrays.clone())
        .expect("gtc executes");
    let l3 = la.level("L3").unwrap();

    println!(
        "== Paper Fig. 9: arrays by fragmentation L3 misses (GTC, mgrid={mgrid}, micell={micell}) ==\n"
    );
    print!("{}", format_fragmentation(&w.program, l3, 8));

    let total_frag = l3.total_fragmentation();
    let zion_frag: f64 = ["zion", "zion0"]
        .iter()
        .map(|n| {
            let a = w.program.array_by_name(n).unwrap();
            l3.frag_by_array[a.index()]
        })
        .sum();
    let zion_total: f64 = ["zion", "zion0"]
        .iter()
        .map(|n| {
            let a = w.program.array_by_name(n).unwrap();
            l3.by_array[a.index()]
        })
        .sum();
    println!("\nzion+zion0 share of all fragmentation misses: {:.1}% (paper ~95%)",
        100.0 * zion_frag / total_frag);
    println!(
        "fragmentation share of zion's own misses:      {:.1}% (paper ~48%)",
        100.0 * zion_frag / zion_total
    );
    println!(
        "zion fragmentation share of ALL L3 misses:     {:.1}% (paper ~13.7%)",
        100.0 * zion_frag / l3.total_misses
    );
}
