//! The perf-regression bench runner: measures replay throughput on the
//! fixed Sweep3D and GTC workloads at several grain counts and writes the
//! machine-readable `BENCH_reuselens.json` (schema documented in
//! `reuselens_bench::report`).
//!
//! ```text
//! bench-runner [--smoke] [--out <path>] [--baseline <path>]
//! ```
//!
//! * `--smoke` — tiny workloads and one rep per point; exercises the full
//!   measurement and JSON path in ~a second (what `scripts/verify.sh`
//!   runs so the path cannot silently rot).
//! * `--out <path>` — where to write the report (default
//!   `BENCH_reuselens.json` in the current directory).
//! * `--baseline <path>` — also diff against a previous report and exit
//!   nonzero when any throughput line drops more than 15%
//!   ([`REGRESSION_THRESHOLD`](reuselens_bench::report::REGRESSION_THRESHOLD)).
//!
//! Each measured point captures the workload once, then replays the
//! buffer `grains`-ways in parallel under a fresh `MetricsRecorder`
//! (best-of-reps wall), so the report carries the per-stage wall-time
//! breakdown and a counter snapshot alongside the throughput. The
//! obs-overhead ratio (dark replay vs replay under the live telemetry
//! service, scraped over HTTP once per second) and the sampled speedup
//! ratio (exact vs 1/100-sampled replay over the full grain ladder) are
//! measured on the first workload and written into the same report; full
//! runs fail when the overhead ratio exceeds `OBS_OVERHEAD_CEILING`.
//!
//! The **single-grain ladder** (first workload, Sweep3D) replays one
//! grain at 1/2/4/8 replay threads — the intra-grain time-partitioned
//! engine — as `sweep3d-single-t<N>` runs, plus the frozen
//! pre-optimization [`ReferenceAnalyzer`] as `sweep3d-single-ref`.
//! `single_grain_speedup_ratio` is the best ladder rung over the
//! reference rung; full (non-smoke) runs fail below
//! `SINGLE_GRAIN_SPEEDUP_FLOOR`. On a single-core host the thread rungs
//! measure partition overhead rather than scaling, so the ratio is
//! carried by the serial-core rewrite (window + fused tree descents +
//! SoA decode) — an honest "this engine vs the algorithm it replaced"
//! number either way.

use reuselens::core::{
    analyze_buffer, analyze_buffer_checkpointed, analyze_buffer_with, capture_program,
    AnalyzeOptions, CheckpointOptions, ReferenceAnalyzer, ReplayThreads, SamplingConfig,
};
use reuselens::obs::{self, MetricsRecorder, ServiceConfig, TelemetryService};
use reuselens::workloads::{gtc, sweep3d, BuiltWorkload};
use reuselens::statics::estimate_profiles;
use reuselens_bench::report::{
    diff, BenchReport, BenchRun, StageSeconds, CHECKPOINT_OVERHEAD_CEILING,
    ESTIMATOR_SPEEDUP_FLOOR, OBS_OVERHEAD_CEILING, SINGLE_GRAIN_SPEEDUP_FLOOR,
    STORE_REPLAY_SPEEDUP_FLOOR,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: bench-runner [--smoke] [--out <path>] [--baseline <path>]";

/// Block sizes grain counts index into: replaying `GRAIN_LADDER[..k]`
/// measures k-way replay parallelism over one shared capture.
const GRAIN_LADDER: [u64; 4] = [64, 256, 4096, 16 * 1024];

struct Options {
    smoke: bool,
    out: PathBuf,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: PathBuf::from("BENCH_reuselens.json"),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// The fixed workload set: `(name, built workload)`.
fn workloads(smoke: bool) -> Vec<(&'static str, BuiltWorkload)> {
    if smoke {
        vec![
            (
                "sweep3d",
                sweep3d::build(&sweep3d::SweepConfig::new(4).with_timesteps(1)),
            ),
            ("gtc", gtc::build(&gtc::GtcConfig::new(32, 2).with_timesteps(1))),
        ]
    } else {
        vec![
            (
                "sweep3d",
                sweep3d::build(&sweep3d::SweepConfig::new(10).with_timesteps(2)),
            ),
            ("gtc", gtc::build(&gtc::GtcConfig::new(256, 8).with_timesteps(1))),
        ]
    }
}

/// Best-of-`reps` wall time of one multi-grain replay.
fn best_replay_wall(
    program: &reuselens::ir::Program,
    buffer: &reuselens::trace::TraceBuffer,
    grains: &[u64],
    reps: usize,
) -> Duration {
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(analyze_buffer(program, buffer, grains).expect("replay"));
            t.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO)
}

/// Best-of-`reps` wall time of one replay under explicit options (the
/// single-grain ladder's entry point).
fn best_replay_wall_with(
    program: &reuselens::ir::Program,
    buffer: &reuselens::trace::TraceBuffer,
    grains: &[u64],
    reps: usize,
    opts: &AnalyzeOptions,
) -> Duration {
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let result = analyze_buffer_with(program, buffer, grains, opts)
                .into_strict()
                .expect("replay");
            std::hint::black_box(result);
            t.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO)
}

/// Best-of-`reps` wall time of the frozen pre-optimization analyzer over
/// the same buffer at one grain — the `single_grain_speedup_ratio`
/// denominator.
fn best_reference_wall(
    program: &reuselens::ir::Program,
    buffer: &reuselens::trace::TraceBuffer,
    grain: u64,
    reps: usize,
) -> Duration {
    (0..reps.max(1))
        .map(|_| {
            let mut analyzer = ReferenceAnalyzer::new(program, grain);
            let t = Instant::now();
            buffer.replay(&mut analyzer);
            std::hint::black_box(analyzer.finish());
            t.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO)
}

/// Best-of-`reps` wall time of the same multi-grain replay through the
/// constant-space sampled analyzer at rate 1/100.
fn best_sampled_replay_wall(
    program: &reuselens::ir::Program,
    buffer: &reuselens::trace::TraceBuffer,
    grains: &[u64],
    reps: usize,
) -> Duration {
    let opts = AnalyzeOptions {
        sampling: SamplingConfig::fixed(0.01),
        ..AnalyzeOptions::default()
    };
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let partial = analyze_buffer_with(program, buffer, grains, &opts);
            assert!(partial.is_complete(), "sampled replay failed");
            std::hint::black_box(partial);
            t.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO)
}

/// Best-of-`reps` wall time of the same single-grain serial replay
/// through the crash-safe checkpointed engine, snapshotting four times
/// over the stream — the `checkpoint_overhead_ratio` numerator.
fn best_checkpointed_replay_wall(
    program: &reuselens::ir::Program,
    buffer: &reuselens::trace::TraceBuffer,
    grain: u64,
    reps: usize,
) -> Duration {
    let dir = std::env::temp_dir().join(format!("reuselens-ckpt-bench-{}", std::process::id()));
    let ckpt = CheckpointOptions {
        dir: dir.clone(),
        every: (buffer.events() / 4).max(1),
        resume: false,
    };
    let opts = AnalyzeOptions::default();
    let wall = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let partial = analyze_buffer_checkpointed(program, buffer, &[grain], &opts, &ckpt)
                .expect("checkpointed replay");
            assert!(partial.is_complete(), "checkpointed replay failed");
            std::hint::black_box(partial);
            t.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO);
    std::fs::remove_dir_all(&dir).ok();
    wall
}

/// The per-stage wall breakdown of one run's snapshot: `sum` over every
/// span and `max` (longest single span — the critical-path figure once
/// partition workers run concurrently).
fn stage_breakdown(snap: &obs::MetricsSnapshot) -> Vec<(String, StageSeconds)> {
    obs::Stage::PIPELINE_ORDER
        .iter()
        .map(|&stage| snap.stage(stage))
        .filter(|stats| stats.count > 0)
        .map(|stats| {
            (
                stats.stage.name().to_string(),
                StageSeconds {
                    sum: stats.total.as_secs_f64(),
                    max: stats.max.as_secs_f64(),
                },
            )
        })
        .collect()
}

/// Folds a snapshot's nonzero counters into the report-wide totals.
fn accumulate_counters(totals: &mut BTreeMap<&'static str, u64>, snap: &obs::MetricsSnapshot) {
    for counter in obs::Counter::ALL {
        let value = snap.counter(counter);
        if value != 0 {
            *totals.entry(counter.name()).or_default() += value;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let (reps, grain_counts): (usize, &[usize]) =
        if opts.smoke { (1, &[1, 2]) } else { (3, &[1, 2, 4]) };

    let mut report = BenchReport::new();
    let mut counter_totals: BTreeMap<&'static str, u64> = BTreeMap::new();

    for (name, w) in workloads(opts.smoke) {
        // Capture once per workload, instrumented so the capture stage and
        // counters land in the report's totals.
        let capture_rec = Arc::new(MetricsRecorder::new());
        obs::install(capture_rec.clone());
        let (buffer, _exec) =
            capture_program(&w.program, w.index_arrays.clone()).expect("capture");
        obs::uninstall();
        accumulate_counters(&mut counter_totals, &capture_rec.snapshot());

        // Warm the page cache / allocator before the measured reps.
        best_replay_wall(&w.program, &buffer, &GRAIN_LADDER[..1], 1);

        for &count in grain_counts {
            let grains = &GRAIN_LADDER[..count];
            let recorder = Arc::new(MetricsRecorder::new());
            obs::install(recorder.clone());
            let wall = best_replay_wall(&w.program, &buffer, grains, reps);
            obs::uninstall();
            let snap = recorder.snapshot();
            accumulate_counters(&mut counter_totals, &snap);
            let stage_seconds = stage_breakdown(&snap);
            let run = BenchRun {
                workload: name.to_string(),
                grains: count as u64,
                events: buffer.events(),
                wall_seconds: wall.as_secs_f64(),
                stage_seconds,
            };
            eprintln!(
                "{name}/{count}: {} events x {count} grains in {:.3} ms ({:.0} ev/s)",
                run.events,
                wall.as_secs_f64() * 1e3,
                run.throughput(),
            );
            report.runs.push(run);
        }

        // Obs overhead on the first workload: the same replay dark and
        // under the full watched-run shape — recorder installed, the
        // telemetry service's aggregator ticking, and an HTTP client
        // scraping `/metrics` once per second — best-of to damp
        // scheduler noise.
        if report.obs_overhead_ratio.is_none() {
            let grains = &GRAIN_LADDER[..2];
            let disabled = best_replay_wall(&w.program, &buffer, grains, reps);
            let recorder = Arc::new(MetricsRecorder::new());
            obs::install(recorder.clone());
            let mut service = TelemetryService::start(recorder, None, ServiceConfig::default());
            let addr = service
                .serve("127.0.0.1:0")
                .expect("bind ephemeral telemetry port");
            let stop = Arc::new(AtomicBool::new(false));
            let scraper_stop = stop.clone();
            let scraper = std::thread::spawn(move || {
                let mut last_scrape: Option<Instant> = None;
                while !scraper_stop.load(Ordering::Relaxed) {
                    if last_scrape.is_none_or(|t| t.elapsed() >= Duration::from_secs(1)) {
                        let _ = obs::http_get(addr, "/metrics");
                        last_scrape = Some(Instant::now());
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
            let enabled = best_replay_wall(&w.program, &buffer, grains, reps);
            stop.store(true, Ordering::Relaxed);
            let _ = scraper.join();
            obs::uninstall();
            service.shutdown();
            let ratio = enabled.as_secs_f64() / disabled.as_secs_f64().max(f64::MIN_POSITIVE);
            eprintln!(
                "obs overhead ratio: {ratio:.3}x with the service scraped at 1 Hz \
                 (target <= {OBS_OVERHEAD_CEILING}x on full runs)"
            );
            report.obs_overhead_ratio = Some(ratio);
        }

        // Sampled rung on the first (Sweep3D) workload: the full grain
        // ladder replayed exactly and through the 1/100 sampled analyzer;
        // the ratio is the headline payoff of approximate analysis.
        if report.sampled_speedup_ratio.is_none() {
            let grains = &GRAIN_LADDER[..];
            let exact = best_replay_wall(&w.program, &buffer, grains, reps);
            let sampled = best_sampled_replay_wall(&w.program, &buffer, grains, reps);
            let ratio = exact.as_secs_f64() / sampled.as_secs_f64().max(f64::MIN_POSITIVE);
            eprintln!("sampled speedup ratio: {ratio:.2}x at rate 1/100 (target >= 3x)");
            report.sampled_speedup_ratio = Some(ratio);
        }

        // Single-grain ladder on the first (Sweep3D) workload: one grain
        // replayed at 1/2/4/8 replay threads plus the frozen
        // pre-optimization baseline (see the module docs).
        if report.single_grain_speedup_ratio.is_none() {
            let grain = GRAIN_LADDER[0];
            let reference = best_reference_wall(&w.program, &buffer, grain, reps);
            report.runs.push(BenchRun {
                workload: format!("{name}-single-ref"),
                grains: 1,
                events: buffer.events(),
                wall_seconds: reference.as_secs_f64(),
                stage_seconds: Vec::new(),
            });
            eprintln!(
                "{name}-single-ref: {:.3} ms (pre-optimization baseline)",
                reference.as_secs_f64() * 1e3
            );
            let mut best = Duration::MAX;
            for threads in [1usize, 2, 4, 8] {
                let opts = AnalyzeOptions {
                    replay_threads: match threads {
                        1 => ReplayThreads::Serial,
                        n => ReplayThreads::Fixed(n),
                    },
                    ..AnalyzeOptions::default()
                };
                let recorder = Arc::new(MetricsRecorder::new());
                obs::install(recorder.clone());
                let wall = best_replay_wall_with(&w.program, &buffer, &[grain], reps, &opts);
                obs::uninstall();
                let snap = recorder.snapshot();
                accumulate_counters(&mut counter_totals, &snap);
                best = best.min(wall);
                let run = BenchRun {
                    workload: format!("{name}-single-t{threads}"),
                    grains: 1,
                    events: buffer.events(),
                    wall_seconds: wall.as_secs_f64(),
                    stage_seconds: stage_breakdown(&snap),
                };
                eprintln!(
                    "{name}-single-t{threads}: {:.3} ms ({:.0} ev/s)",
                    wall.as_secs_f64() * 1e3,
                    run.throughput(),
                );
                report.runs.push(run);
            }
            let ratio = reference.as_secs_f64() / best.as_secs_f64().max(f64::MIN_POSITIVE);
            eprintln!(
                "single-grain speedup ratio: {ratio:.2}x vs pre-optimization serial core \
                 (target >= {SINGLE_GRAIN_SPEEDUP_FLOOR}x on full runs)"
            );
            report.single_grain_speedup_ratio = Some(ratio);
        }

        // Estimator rung on the first (Sweep3D) workload: the zero-trace
        // symbolic estimator against the full-trace exact replay it
        // substitutes for, over the same grain set. Replay-only wall (no
        // capture) in the numerator keeps the comparison conservative.
        if report.estimator_speedup_ratio.is_none() {
            let grains = &GRAIN_LADDER[..2];
            let dynamic = best_replay_wall(&w.program, &buffer, grains, reps);
            let estimate = (0..reps.max(1))
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(estimate_profiles(&w.program, &w.index_arrays, grains));
                    t.elapsed()
                })
                .min()
                .unwrap_or(Duration::ZERO);
            let ratio = dynamic.as_secs_f64() / estimate.as_secs_f64().max(f64::MIN_POSITIVE);
            eprintln!(
                "estimator speedup ratio: {ratio:.0}x vs full-trace replay \
                 (target >= {ESTIMATOR_SPEEDUP_FLOOR}x on full runs)"
            );
            report.estimator_speedup_ratio = Some(ratio);
        }

        // Store-reuse rung on the first (Sweep3D) workload: wall time to
        // obtain a replay-ready buffer by capturing from scratch vs by
        // loading the trace persisted in the on-disk store. The replay
        // that follows is bit-identical either way
        // (tests/store_identity.rs), so the acquisition cost is the
        // whole difference between a cold analysis session and one
        // reusing a stored capture. The put() is not timed: persistence
        // happens once, at capture time.
        if report.store_replay_speedup_ratio.is_none() {
            let dir = std::env::temp_dir().join(format!(
                "reuselens-bench-store-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let seeded = reuselens::store::TraceStore::open(&dir).and_then(|mut store| {
                store.put(
                    "bench",
                    &buffer,
                    reuselens::store::TraceMeta {
                        workload: name.to_string(),
                        grains: GRAIN_LADDER[..2].to_vec(),
                    },
                )?;
                Ok(store)
            });
            match seeded {
                Err(e) => eprintln!("store-reuse rung skipped: cannot seed store: {e}"),
                Ok(store) => {
                    let scratch = (0..reps.max(1))
                        .map(|_| {
                            let t = Instant::now();
                            std::hint::black_box(
                                capture_program(&w.program, w.index_arrays.clone())
                                    .expect("bench capture"),
                            );
                            t.elapsed()
                        })
                        .min()
                        .unwrap_or(Duration::ZERO);
                    let reuse = (0..reps.max(1))
                        .map(|_| {
                            let t = Instant::now();
                            std::hint::black_box(
                                store.get("bench").expect("bench store read"),
                            );
                            t.elapsed()
                        })
                        .min()
                        .unwrap_or(Duration::ZERO);
                    let ratio =
                        scratch.as_secs_f64() / reuse.as_secs_f64().max(f64::MIN_POSITIVE);
                    eprintln!(
                        "store replay speedup ratio: {ratio:.2}x vs capture-from-scratch \
                         (target >= {STORE_REPLAY_SPEEDUP_FLOOR}x on full runs)"
                    );
                    report.store_replay_speedup_ratio = Some(ratio);
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        // Checkpoint overhead on the first (Sweep3D) workload: the same
        // single-grain serial replay plain and through the crash-safe
        // checkpointed engine snapshotting four times over the stream.
        if report.checkpoint_overhead_ratio.is_none() {
            let grain = GRAIN_LADDER[0];
            let plain_opts = AnalyzeOptions::default();
            let plain = best_replay_wall_with(&w.program, &buffer, &[grain], reps, &plain_opts);
            let checkpointed = best_checkpointed_replay_wall(&w.program, &buffer, grain, reps);
            let ratio = checkpointed.as_secs_f64() / plain.as_secs_f64().max(f64::MIN_POSITIVE);
            eprintln!(
                "checkpoint overhead ratio: {ratio:.3}x \
                 (target <= {CHECKPOINT_OVERHEAD_CEILING}x on full runs)"
            );
            report.checkpoint_overhead_ratio = Some(ratio);
        }
    }

    report.counters = counter_totals
        .into_iter()
        .map(|(name, value)| (name.to_string(), value))
        .collect();

    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} (overall {:.0} ev/s)",
        opts.out.display(),
        report.throughput()
    );

    // Absolute acceptance bars, full runs only: smoke workloads are too
    // small for the serial-core gains to dominate fixed costs (and for
    // per-snapshot costs to amortize), so smoke records the ratios
    // without gating on them.
    if !opts.smoke {
        if let Some(ratio) = report.obs_overhead_ratio {
            if ratio > OBS_OVERHEAD_CEILING {
                eprintln!(
                    "obs overhead {ratio:.3}x is above the {OBS_OVERHEAD_CEILING}x ceiling"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(ratio) = report.single_grain_speedup_ratio {
            if ratio < SINGLE_GRAIN_SPEEDUP_FLOOR {
                eprintln!(
                    "single-grain speedup {ratio:.2}x is below the \
                     {SINGLE_GRAIN_SPEEDUP_FLOOR}x floor"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(ratio) = report.checkpoint_overhead_ratio {
            if ratio > CHECKPOINT_OVERHEAD_CEILING {
                eprintln!(
                    "checkpoint overhead {ratio:.3}x is above the \
                     {CHECKPOINT_OVERHEAD_CEILING}x ceiling"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(ratio) = report.estimator_speedup_ratio {
            if ratio < ESTIMATOR_SPEEDUP_FLOOR {
                eprintln!(
                    "estimator speedup {ratio:.0}x is below the \
                     {ESTIMATOR_SPEEDUP_FLOOR}x floor"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(ratio) = report.store_replay_speedup_ratio {
            if ratio < STORE_REPLAY_SPEEDUP_FLOOR {
                eprintln!(
                    "store replay speedup {ratio:.2}x is below the \
                     {STORE_REPLAY_SPEEDUP_FLOOR}x floor"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(baseline_path) = &opts.baseline {
        let baseline = match std::fs::read_to_string(baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_json(&text))
        {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let outcome = diff(&baseline, &report);
        print!("{}", outcome.render());
        if outcome.regressed {
            eprintln!("throughput regressed more than 15% against the baseline");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
