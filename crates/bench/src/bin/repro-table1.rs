//! Reproduces the paper's Table I: builds one program per scenario row and
//! shows that the advisor recommends the table's transformation.

use reuselens_prng::SplitMix64;
use reuselens::advisor::{Advisor, Transformation};
use reuselens::ir::{Expr, Program, ProgramBuilder};
use reuselens::metrics::run_locality_analysis;
use reuselens_bench::hierarchy;

fn scenario_fragmentation() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>) {
    let n = 16384u64;
    let mut p = ProgramBuilder::new("row1-fragmentation");
    let zion = p.array("zion", 8, &[7, n]);
    p.routine("main", |r| {
        r.for_("sweep", 0, 1, |r, _| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(zion, vec![Expr::c(2), i.into()]);
            });
        });
    });
    (p.finish(), vec![])
}

fn scenario_irregular() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>) {
    let (grid, particles) = (8192u64, 16384u64);
    let mut p = ProgramBuilder::new("row2-irregular");
    let ix = p.index_array("ix", &[particles]);
    let table = p.array("grid", 8, &[grid]);
    p.routine("main", |r| {
        r.for_("i", 0, (particles - 1) as i64, |r, i| {
            r.load(table, vec![Expr::load(ix, vec![i.into()])]);
        });
    });
    let mut rng = SplitMix64::seed_from_u64(7);
    let idx = (0..particles).map(|_| rng.gen_range(0..grid) as i64).collect();
    (p.finish(), vec![(ix, idx)])
}

fn scenario_interchange() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>) {
    let (n, m) = (512u64, 128u64);
    let mut p = ProgramBuilder::new("row3-interchange");
    let a = p.array("a", 8, &[n, m]);
    p.routine("main", |r| {
        r.for_("i", 0, (n - 1) as i64, |r, i| {
            r.for_("j", 0, (m - 1) as i64, |r, j| {
                r.load(a, vec![i.into(), j.into()]);
            });
        });
    });
    (p.finish(), vec![])
}

fn scenario_fusion() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>) {
    let n = 32768u64;
    let mut p = ProgramBuilder::new("row4-fusion");
    let a = p.array("a", 8, &[n]);
    p.routine("main", |r| {
        r.for_("outer", 0, 0, |r, _| {
            r.for_("produce", 0, (n - 1) as i64, |r, i| {
                r.store(a, vec![i.into()]);
            });
            r.for_("consume", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
    });
    (p.finish(), vec![])
}

fn scenario_strip_mine() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>) {
    let n = 32768u64;
    let mut p = ProgramBuilder::new("row5-stripmine");
    let a = p.array("a", 8, &[n]);
    let callee = p.declare_routine("gcmotion");
    let main = p.routine("pushi", |r| {
        r.for_("outer", 0, 0, |r, _| {
            r.call(callee);
            r.for_("consume", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
    });
    p.define_routine(callee, |r| {
        r.for_("produce", 0, (n - 1) as i64, |r, i| {
            r.store(a, vec![i.into()]);
        });
    });
    p.set_entry(main);
    (p.finish(), vec![])
}

fn scenario_time_loop() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>) {
    let n = 32768u64;
    let mut p = ProgramBuilder::new("row6-timeloop");
    let a = p.array("a", 8, &[n]);
    p.routine("main", |r| {
        r.for_("istep", 0, 3, |r, _| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
                r.store(a, vec![i.into()]);
            });
        });
    });
    (p.finish(), vec![])
}

fn kind(t: &Transformation) -> &'static str {
    match t {
        Transformation::SplitArray { .. } => "split array (AoS->SoA)",
        Transformation::DataComputationReordering => "data/computation reordering",
        Transformation::LoopInterchange { .. } => "loop/dimension interchange",
        Transformation::LoopBlocking { .. } => "loop blocking",
        Transformation::Fuse { .. } => "fuse source & destination",
        Transformation::StripMineAndPromote { .. } => "strip-mine + promote",
        Transformation::TimeSkewingOrAccept { .. } => "time skewing / accept",
    }
}

/// A scenario builder returning the program and its index-array contents.
type Scenario = fn() -> (Program, Vec<(reuselens::ir::ArrayId, Vec<i64>)>);

fn main() {
    println!("== Paper Table I: recommended transformations per scenario ==\n");
    println!("{:<22} {:<30} paper says", "scenario", "top recommendation");
    let rows: Vec<(&str, Scenario, &str, bool)> = vec![
        ("fragmentation", scenario_fragmentation, "split the array", false),
        ("irregular, S==D", scenario_irregular, "data/computation reordering", false),
        ("S==D, C outer loop", scenario_interchange, "loop interchange", false),
        ("S!=D, same routine", scenario_fusion, "fuse S and D", false),
        ("S/D across routines", scenario_strip_mine, "strip-mine + promote", false),
        ("C is time loop", scenario_time_loop, "time skew / accept", true),
    ];
    for (name, builder, paper, mark_time_loops) in rows {
        let (prog, index) = builder();
        let la = run_locality_analysis(&prog, &hierarchy(), index)
            .expect("scenario executes");
        let mut advisor = Advisor::new(&prog);
        if mark_time_loops {
            advisor = advisor.with_time_loops(reuselens::advisor::detect_time_loops(&prog));
        }
        let recs = advisor.advise(la.level("L2").unwrap());
        let top = recs
            .first()
            .map(|r| kind(&r.transformation))
            .unwrap_or("(none)");
        println!("{name:<22} {top:<30} {paper}");
    }
}
