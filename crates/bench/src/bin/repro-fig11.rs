//! Reproduces the paper's Figure 11: GTC L2 / L3 / TLB misses and run
//! time per particle-per-cell (micell) per time step, as micell sweeps the
//! x-axis, for the seven cumulative transformation variants.
//!
//! Paper findings this harness reproduces in shape:
//! * the zion transpose gives the largest single reduction in cache misses;
//! * smooth's loop interchange removes its TLB misses (visible at small
//!   micell, since smooth's work is independent of the particle count);
//! * pushi tiling/fusion cuts L2/L3 misses further;
//! * overall ~2x fewer cache misses and a sizable run-time reduction
//!   (paper: 33%).

use reuselens::cache::evaluate_program;
use reuselens::workloads::gtc::{build, GtcConfig, GtcTransforms};
use reuselens_bench::{ascii_chart, csv, hierarchy, num};

fn main() {
    let mgrid: u64 = std::env::var("GTC_MGRID")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let micells: Vec<u64> = std::env::var("GTC_MICELLS")
        .map(|s| s.split(',').map(|x| x.parse().expect("micell")).collect())
        .unwrap_or_else(|_| vec![4, 8, 12, 16, 24, 32]);
    let h = hierarchy();
    eprintln!("hierarchy: {h}");

    println!("== Paper Fig. 11: GTC misses & time per micell per time step ==");
    println!("variant,micell,l2_per_micell,l3_per_micell,tlb_per_micell,cycles_per_micell");
    let mut at_largest: Vec<[f64; 4]> = Vec::new();
    let mut all_series: Vec<(String, Vec<[f64; 4]>)> = Vec::new();
    for n in 0..=6 {
        let label = GtcTransforms::label(n);
        let mut rows: Vec<[f64; 4]> = Vec::new();
        for &micell in &micells {
            let cfg = GtcConfig::new(mgrid, micell)
                .with_transforms(GtcTransforms::cumulative(n));
            let w = build(&cfg);
            let (report, _) =
                evaluate_program(&w.program, &h, w.index_arrays.clone()).expect("gtc runs");
            let l2 = w.normalize(report.misses_at("L2").unwrap());
            let l3 = w.normalize(report.misses_at("L3").unwrap());
            let tlb = w.normalize(report.misses_at("TLB").unwrap());
            let cyc = w.normalize(report.timing.total());
            println!(
                "{}",
                csv(&[
                    label.to_string(),
                    micell.to_string(),
                    num(l2),
                    num(l3),
                    num(tlb),
                    num(cyc),
                ])
            );
            rows.push([l2, l3, tlb, cyc]);
            if micell == *micells.last().unwrap() && n == at_largest.len() {
                at_largest.push([l2, l3, tlb, cyc]);
            }
        }
        all_series.push((label.to_string(), rows));
    }

    // The figure itself, as ASCII: one chart per metric.
    let xs: Vec<String> = micells.iter().map(|m| m.to_string()).collect();
    for (metric, name) in [
        (0, "Fig 11(a): L2 misses / micell / time step"),
        (1, "Fig 11(b): L3 misses / micell / time step"),
        (2, "Fig 11(c): TLB misses / micell / time step"),
        (3, "Fig 11(d): cycles / micell / time step"),
    ] {
        let series: Vec<(String, Vec<f64>)> = all_series
            .iter()
            .map(|(label, rows)| (label.clone(), rows.iter().map(|r| r[metric]).collect()))
            .collect();
        println!("\n{}", ascii_chart(name, &xs, &series));
    }

    println!("\nshape checks at the largest micell (variant 0 -> 6):");
    let first = at_largest[0];
    let last = at_largest[6];
    println!(
        "  L2 misses reduction:  {:.2}x (paper: ~2x)",
        first[0] / last[0]
    );
    println!(
        "  L3 misses reduction:  {:.2}x (paper: ~2x)",
        first[1] / last[1]
    );
    println!(
        "  TLB misses reduction: {:.2}x (paper: huge margin)",
        first[2] / last[2]
    );
    println!(
        "  time reduction:       {:.1}% (paper: ~33%)",
        100.0 * (1.0 - last[3] / first[3])
    );
    let zion_gain = first[1] / at_largest[1][1];
    println!("  L3 gain from zion transpose alone: {zion_gain:.2}x (largest single step)");
}
