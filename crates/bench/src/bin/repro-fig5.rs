//! Reproduces the paper's Figure 5: the fraction of L2 / L3 / TLB misses
//! *carried* by each principal Sweep3D scope.
//!
//! Paper (Itanium2, 50³ mesh): idiag carries ~75% of L2 and ~68% of L3
//! misses; iq carries ~10.5% / ~22%; jkm carries ~79% of TLB misses.

use reuselens::metrics::{format_carried_misses, run_locality_analysis};
use reuselens::workloads::sweep3d::{build, SweepConfig};
use reuselens_bench::hierarchy;

fn main() {
    let mesh: u64 = std::env::var("SWEEP_MESH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = SweepConfig::new(mesh).with_timesteps(2);
    let w = build(&cfg);
    let h = hierarchy();
    eprintln!("running sweep3d mesh={mesh} on {h} ...");
    let la = run_locality_analysis(&w.program, &h, w.index_arrays.clone())
        .expect("sweep3d executes");

    println!("== Paper Fig. 5: carried misses per scope (Sweep3D, mesh {mesh}^3) ==\n");
    print!(
        "{}",
        format_carried_misses(&w.program, &la.all_levels(), 0.02)
    );

    println!("\nshares of total misses carried by the principal loops:");
    for (name, level) in [
        ("idiag", "L2"),
        ("idiag", "L3"),
        ("iq", "L2"),
        ("iq", "L3"),
        ("jkm", "TLB"),
        ("idiag", "TLB"),
    ] {
        let scope = w.program.scope_by_name(name).unwrap();
        let m = la.level(level).unwrap();
        let share = 100.0 * m.carried[scope.index()] / m.total_misses;
        println!("  {name:<6} {level:<4} {share:>5.1}%");
    }
    println!("\npaper: idiag L2 ~75%, idiag L3 ~68%, iq L2 ~10.5%, iq L3 ~22%, jkm TLB ~79%");
}
