//! Reproduces the paper's Table II: breakdown of Sweep3D L2 misses by
//! array × (reuse source scope, carrying scope).
//!
//! Paper (50³, Itanium2): src 26.7%, flux 26.9%, face 19.7%,
//! sigt+phikb+phijb 18.4% of all L2 misses; within each array the idiag
//! loop carries the bulk, with iq and jkm minor.

use reuselens::metrics::{format_array_breakdown, run_locality_analysis};
use reuselens::workloads::sweep3d::{build, SweepConfig};
use reuselens_bench::hierarchy;

fn main() {
    let mesh: u64 = std::env::var("SWEEP_MESH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = SweepConfig::new(mesh).with_timesteps(2);
    let w = build(&cfg);
    let la = run_locality_analysis(&w.program, &hierarchy(), w.index_arrays.clone())
        .expect("sweep3d executes");
    let l2 = la.level("L2").unwrap();

    println!("== Paper Table II: breakdown of L2 misses in Sweep3D (mesh {mesh}^3) ==\n");
    println!("{:<18} {:>10}", "array", "% of all L2 misses");
    let mut rows: Vec<(String, f64)> = w
        .program
        .arrays()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            (
                a.name().to_string(),
                100.0 * l2.by_array[i] / l2.total_misses,
            )
        })
        .filter(|(_, pct)| *pct >= 0.5)
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, pct) in &rows {
        println!("{name:<18} {pct:>9.1}%");
    }
    let combined: f64 = rows
        .iter()
        .filter(|(n, _)| n == "sigt" || n == "phikb" || n == "phijb")
        .map(|(_, p)| p)
        .sum();
    println!("{:<18} {combined:>9.1}%", "sigt+phikb+phijb");

    println!("\nper-array breakdown by (reuse source scope, carrying scope):\n");
    for name in ["src", "flux", "face"] {
        let arr = w.program.array_by_name(name).unwrap();
        print!("{}", format_array_breakdown(&w.program, l2, arr));
        println!();
    }
    println!("paper: src 26.7%, flux 26.9%, face 19.7%, sigt+phikb+phijb 18.4%;");
    println!("paper: within each array, idiag carries most (20.4/20.4/15.5%),");
    println!("       then iq (3.3/3.4/2.4%) and jkm (2.9/3.0/1.9%).");
}
