//! Reproduces the paper's §VI (Related Work) quantitative comparison:
//! Ding & Zhong transformed Sweep3D to shorten the reuse carried by the
//! **iq** (octant) loop and saw a speed-up that peaks at small meshes and
//! tails off for large ones (2.36x at mesh 70 falling toward 1.45x);
//! the paper's own transformation targets the **idiag**-carried reuse and
//! holds a consistent speed-up across mesh sizes.
//!
//! Here: the `octant_inner` variant plays Ding & Zhong's role (it
//! eliminates iq-carried reuse, breaking wavefront parallelism), and
//! `mi_block(6) + dimension interchange` is the paper's tuning.

use reuselens::cache::evaluate_program;
use reuselens::workloads::sweep3d::{build, SweepConfig};
use reuselens_bench::{csv, hierarchy, num};

fn main() {
    let meshes: Vec<u64> = std::env::var("SWEEP_MESHES")
        .map(|s| s.split(',').map(|x| x.parse().expect("mesh")).collect())
        .unwrap_or_else(|_| vec![8, 10, 12, 14, 16, 20]);
    let h = hierarchy();
    eprintln!("hierarchy: {h}");

    println!("== Paper §VI: iq-targeted (Ding & Zhong) vs idiag-targeted (paper) tuning ==");
    println!("mesh,original_cycles_per_cell,dz_speedup,paper_speedup");
    let mut dz_speedups = Vec::new();
    let mut paper_speedups = Vec::new();
    for &mesh in &meshes {
        let time = |cfg: &SweepConfig| {
            let w = build(cfg);
            let (report, _) =
                evaluate_program(&w.program, &h, w.index_arrays.clone()).expect("runs");
            w.normalize(report.timing.total())
        };
        let orig = time(&SweepConfig::new(mesh));
        let dz = time(&SweepConfig::new(mesh).with_octant_inner());
        let paper = time(
            &SweepConfig::new(mesh)
                .with_mi_block(6)
                .with_dim_interchange(),
        );
        let dz_speedup = orig / dz;
        let paper_speedup = orig / paper;
        dz_speedups.push(dz_speedup);
        paper_speedups.push(paper_speedup);
        println!(
            "{}",
            csv(&[
                mesh.to_string(),
                num(orig),
                format!("{dz_speedup:.3}"),
                format!("{paper_speedup:.3}"),
            ])
        );
    }

    // The reproducible form of the paper's §VI claim: at small meshes the
    // two tunings are comparable (iq-carried reuse is a large share of the
    // misses), but as the mesh grows the idiag-carried reuse dominates and
    // the iq-targeted restructuring falls behind — "the speed-up tailing
    // off towards larger problem sizes" relative to the paper's tuning,
    // which stays consistently ahead.
    println!("\nshape checks (DZ speedup as a fraction of the paper-tuning speedup):");
    let first_ratio = dz_speedups.first().unwrap() / paper_speedups.first().unwrap();
    let last_ratio = dz_speedups.last().unwrap() / paper_speedups.last().unwrap();
    println!("  at smallest mesh: {:.2}", first_ratio);
    println!("  at largest mesh:  {:.2}", last_ratio);
    println!(
        "  => the iq-targeted tuning tails off relative to idiag-targeted tuning: {}",
        if last_ratio < first_ratio { "yes" } else { "NO" }
    );
    println!("  (and the DZ restructuring sacrifices the sweep's wavefront parallelism,");
    println!("   which the paper identifies as its hidden cost)");
}
