//! Reproduces the paper's Figure 8: Sweep3D L2 / L3 / TLB misses and
//! cycles per cell per time step versus mesh size, for the original code,
//! `mi`-blocking factors 1/2/3/6, and blocking 6 + dimension interchange.
//!
//! Paper findings this harness reproduces in shape:
//! * original and block-1 behave identically;
//! * misses drop by integer factors as the blocking factor grows;
//! * block-6 + dimension interchange is best, and its run time scales
//!   flat with mesh size while the original grows.

use reuselens::cache::evaluate_program;
use reuselens::workloads::sweep3d::{build, SweepConfig};
use reuselens_bench::{ascii_chart, csv, hierarchy, num};

struct Variant {
    label: &'static str,
    block: u64,
    dim_ic: bool,
}

fn main() {
    let meshes: Vec<u64> = std::env::var("SWEEP_MESHES")
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("mesh size"))
                .collect()
        })
        .unwrap_or_else(|_| vec![8, 10, 12, 14, 16, 20]);
    let variants = [
        Variant { label: "Original", block: 1, dim_ic: false },
        Variant { label: "Block size 1", block: 1, dim_ic: false },
        Variant { label: "Block size 2", block: 2, dim_ic: false },
        Variant { label: "Block size 3", block: 3, dim_ic: false },
        Variant { label: "Block size 6", block: 6, dim_ic: false },
        Variant { label: "Blk6 + dimIC", block: 6, dim_ic: true },
    ];
    let h = hierarchy();
    eprintln!("hierarchy: {h}");

    println!("== Paper Fig. 8: Sweep3D misses & cycles / cell / time step vs mesh size ==");
    println!("variant,mesh,l2_per_cell,l3_per_cell,tlb_per_cell,cycles_per_cell,nonstall_per_cell");
    let mut summary: Vec<(String, Vec<[f64; 5]>)> = Vec::new();
    for v in &variants {
        let mut series = Vec::new();
        for &mesh in &meshes {
            let mut cfg = SweepConfig::new(mesh).with_mi_block(v.block);
            if v.dim_ic {
                cfg = cfg.with_dim_interchange();
            }
            let w = build(&cfg);
            let (report, _) =
                evaluate_program(&w.program, &h, w.index_arrays.clone()).expect("runs");
            let l2 = w.normalize(report.misses_at("L2").unwrap());
            let l3 = w.normalize(report.misses_at("L3").unwrap());
            let tlb = w.normalize(report.misses_at("TLB").unwrap());
            let cyc = w.normalize(report.timing.total());
            let nonstall = w.normalize(report.timing.non_stall);
            println!(
                "{}",
                csv(&[
                    v.label.to_string(),
                    mesh.to_string(),
                    num(l2),
                    num(l3),
                    num(tlb),
                    num(cyc),
                    num(nonstall),
                ])
            );
            series.push([l2, l3, tlb, cyc, nonstall]);
        }
        summary.push((v.label.to_string(), series));
    }

    // The figure itself, as ASCII: one chart per metric.
    let xs: Vec<String> = meshes.iter().map(|m| m.to_string()).collect();
    for (metric, name) in [
        (0, "Fig 8(a): L2 misses / cell / time step"),
        (1, "Fig 8(b): L3 misses / cell / time step"),
        (2, "Fig 8(c): TLB misses / cell / time step"),
        (3, "Fig 8(d): cycles / cell / time step"),
    ] {
        let series: Vec<(String, Vec<f64>)> = summary
            .iter()
            .map(|(label, rows)| (label.clone(), rows.iter().map(|r| r[metric]).collect()))
            .collect();
        println!("\n{}", ascii_chart(name, &xs, &series));
    }

    // Shape checks mirroring the paper's text.
    let at_last = |label: &str, metric: usize| -> f64 {
        summary
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| s.last().unwrap()[metric])
            .unwrap()
    };
    println!("\nshape checks at the largest mesh:");
    let orig = at_last("Original", 0);
    let b1 = at_last("Block size 1", 0);
    let b6 = at_last("Block size 6", 0);
    let best = at_last("Blk6 + dimIC", 0);
    println!("  original == block1 (L2/cell): {} == {}", num(orig), num(b1));
    println!(
        "  L2 reduction block6 vs original: {:.2}x (paper: integer factors)",
        orig / b6
    );
    println!(
        "  L2 reduction blk6+dimIC vs original: {:.2}x",
        orig / best
    );
    println!(
        "  TLB reduction blk6+dimIC vs original: {:.2}x",
        at_last("Original", 2) / at_last("Blk6 + dimIC", 2)
    );
    println!(
        "  speedup blk6+dimIC vs original: {:.2}x (paper: 2.5x)",
        at_last("Original", 3) / at_last("Blk6 + dimIC", 3)
    );
}
