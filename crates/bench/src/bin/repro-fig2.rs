//! Reproduces the paper's Figure 2 discussion: fragmentation factors for
//! the stride-4 loop nest (array A → 0.5, array B → 0.0), including the
//! reuse-group splitting of §III step 2.

use reuselens::statics::StaticAnalysis;
use reuselens::trace::{Executor, NullSink};
use reuselens::workloads::kernels::fig2_fragmentation;

fn main() {
    let w = fig2_fragmentation(64, 16);
    let exec = Executor::new(&w.program)
        .run(&mut NullSink)
        .expect("fig2 kernel executes");
    let sa = StaticAnalysis::analyze(&w.program, &exec);

    println!("== Paper Fig. 2: cache-line fragmentation example ==\n");
    println!(
        "{:<8} {:>6} {:>14} {:>12} {:>14}",
        "array", "refs", "stride(bytes)", "reuse-groups", "fragmentation"
    );
    for g in &sa.groups {
        let name = w.program.array(g.array).name().to_string();
        if name != "a" && name != "b" {
            continue;
        }
        println!(
            "{:<8} {:>6} {:>14} {:>12} {:>14}",
            name,
            g.refs.len(),
            g.min_stride_loop
                .map(|(_, s)| s.to_string())
                .unwrap_or_else(|| "-".into()),
            g.reuse_groups.len(),
            g.fragmentation
                .map(|f| format!("{f:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\npaper: A splits into 2 reuse groups, coverage 16/32 -> f = 0.50");
    println!("paper: B stays one reuse group,   coverage 32/32 -> f = 0.00");
}
