//! Reproduces the paper's Figure 10: GTC program scopes carrying the most
//! (a) L3 cache misses and (b) TLB misses.
//!
//! Paper: the main time loop carries ~11% of L3 misses and together with
//! the Runge-Kutta (irk) loop ~40%; the pushi routine carries ~20%; the
//! chargei loop pair ~11%. A single loop nest in smooth carries ~64% of
//! all TLB misses.

use reuselens::metrics::{format_carried_misses, run_locality_analysis};
use reuselens::workloads::gtc::{build, GtcConfig};
use reuselens_bench::hierarchy;

fn main() {
    let mgrid: u64 = std::env::var("GTC_MGRID")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let micell: u64 = std::env::var("GTC_MICELL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let w = build(&GtcConfig::new(mgrid, micell).with_timesteps(2));
    let la = run_locality_analysis(&w.program, &hierarchy(), w.index_arrays.clone())
        .expect("gtc executes");

    println!(
        "== Paper Fig. 10: scopes carrying L3 and TLB misses (GTC, mgrid={mgrid}, micell={micell}) ==\n"
    );
    let l3 = la.level("L3").unwrap();
    let tlb = la.level("TLB").unwrap();
    print!("{}", format_carried_misses(&w.program, &[l3, tlb], 0.02));

    println!("\nkey scopes:");
    for (label, name) in [
        ("main time loop (istep)", "istep"),
        ("runge-kutta loop (irk)", "irk"),
        ("pushi routine", "pushi"),
        ("chargei routine", "chargei"),
        ("smooth outer loop", "smooth_i"),
    ] {
        let scope = w
            .program
            .scope_by_name(name)
            .unwrap_or_else(|| panic!("scope {name}"));
        println!(
            "  {label:<26} L3 {:>5.1}%   TLB {:>5.1}%",
            100.0 * l3.carried[scope.index()] / l3.total_misses,
            100.0 * tlb.carried[scope.index()] / tlb.total_misses,
        );
    }
    println!("\npaper: istep ~11% L3, istep+irk ~40% L3, pushi ~20% L3, chargei pair ~11% L3;");
    println!("paper: the smooth loop nest carries ~64% of TLB misses.");
}
