//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API.
//!
//! The build environment is fully offline, so the benches cannot pull the
//! real `criterion` crate. This module implements the subset the benches
//! use — `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput::Elements`, `b.iter(..)`, and the `criterion_group!` /
//! `criterion_main!` macros — over plain `std::time::Instant` sampling:
//! a warm-up phase calibrates iterations per sample, then `sample_size`
//! samples are timed and the median per-iteration time (and derived
//! throughput) is reported.
//!
//! A positional command-line argument acts as a substring filter on
//! `group/name` ids, mirroring `cargo bench -- <filter>`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point object handed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // First non-flag argument filters benchmark ids by substring
        // (cargo itself passes flags like `--bench`; skip those).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements (events, accesses, references) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A parameterized benchmark id: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Runs one benchmark body repeatedly and records the elapsed time.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of benchmarks sharing warm-up/measurement configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the calibration warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares the work per iteration for throughput reporting; applies
    /// to subsequently registered benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Registers and runs a benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        self.run(&id, f);
        self
    }

    /// Registers and runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.c.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up and calibrate: grow the iteration count until one batch
        // is long enough to time reliably, for at least `warm_up` total.
        let warm_start = Instant::now();
        let mut iters = 1u64;
        let mut per_iter;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            if warm_start.elapsed() >= self.warm_up && b.elapsed >= Duration::from_millis(1) {
                break;
            }
            if b.elapsed < Duration::from_millis(1) {
                iters = iters.saturating_mul(2);
            }
        }
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement.as_nanos() / self.samples as u128;
        let sample_iters =
            (budget / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher {
                    iters: sample_iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed / sample_iters as u32
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let (lo, hi) = (times[0], times[times.len() - 1]);
        let mut line = format!(
            "{id:<44} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        if let Some(t) = self.throughput {
            let secs = median.as_secs_f64();
            let rate = match t {
                Throughput::Elements(n) => format!("{} elem/s", fmt_rate(n as f64 / secs)),
                Throughput::Bytes(n) => format!("{}B/s", fmt_rate(n as f64 / secs)),
            };
            line.push_str(&format!("  thrpt: {rate}"));
        }
        println!("{line}");
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Collects bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks_quickly() {
        let c = Criterion { filter: None };
        let mut g = BenchmarkGroup {
            c: &c,
            name: "t".into(),
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            samples: 3,
            throughput: None,
        };
        let mut ran = false;
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            filter: Some("other".into()),
        };
        let mut g = BenchmarkGroup {
            c: &c,
            name: "t".into(),
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            samples: 2,
            throughput: None,
        };
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(fmt_time(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_rate(2.5e6).starts_with("2.50 M"));
        let id = BenchmarkId::new("f", 64);
        assert_eq!(id.id, "f/64");
    }
}
