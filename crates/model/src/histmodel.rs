//! Scaling models of reuse-distance histograms and whole profiles.
//!
//! Following the paper's modeling approach, each pattern's histogram is
//! partitioned into equal-count quantile slices; the total count and each
//! slice's representative distance are fit as functions of problem size.
//! A fitted [`ProfileModel`] predicts the full [`ReuseProfile`] of an
//! unmeasured input, which feeds the usual cache-miss prediction.

use crate::fit::{fit_scaling, Fit};
use reuselens_core::{Histogram, PatternKey, ReusePattern, ReuseProfile};
use std::collections::BTreeMap;

/// Scaling model of one histogram family (one reuse pattern across
/// problem sizes).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramModel {
    /// Fit of the total reuse count.
    pub count: Fit,
    /// Fit of each quantile slice's representative distance.
    pub slices: Vec<Fit>,
}

impl HistogramModel {
    /// Fits a family of histograms measured at the given problem sizes.
    /// Returns `None` when fewer than two sizes are given, when any size
    /// is non-finite, or when the sizes are not strictly increasing — a
    /// duplicated or out-of-order size makes the scaling solve degenerate
    /// and used to yield a silently garbage fit.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` and `hists` differ in length or `nslices` is zero.
    pub fn fit(sizes: &[f64], hists: &[&Histogram], nslices: usize) -> Option<HistogramModel> {
        assert_eq!(sizes.len(), hists.len(), "one histogram per size");
        assert!(nslices > 0, "need at least one slice");
        if sizes.len() < 2 || !sizes_are_valid(sizes) {
            return None;
        }
        let counts: Vec<f64> = hists.iter().map(|h| h.total() as f64).collect();
        let count = fit_scaling(sizes, &counts, 2);
        let per_size_slices: Vec<Vec<f64>> = hists
            .iter()
            .map(|h| {
                let mut s = h.quantile_slices(nslices);
                s.resize(nslices, 0.0);
                s
            })
            .collect();
        let slices = (0..nslices)
            .map(|q| {
                let ys: Vec<f64> = per_size_slices.iter().map(|s| s[q]).collect();
                fit_scaling(sizes, &ys, 2)
            })
            .collect();
        Some(HistogramModel { count, slices })
    }

    /// Predicts the histogram at problem size `n`.
    pub fn predict(&self, n: f64) -> Histogram {
        let total = self.count.eval(n).round().max(0.0) as u64;
        let nslices = self.slices.len() as u64;
        let mut h = Histogram::new();
        if total == 0 {
            return h;
        }
        let per_slice = total / nslices;
        let remainder = total % nslices;
        for (q, fit) in self.slices.iter().enumerate() {
            let d = fit.eval(n).round().max(0.0) as u64;
            let c = per_slice + if (q as u64) < remainder { 1 } else { 0 };
            h.add_n(d, c);
        }
        h
    }
}

/// True when every size is finite and the sequence strictly increases —
/// the precondition for a meaningful scaling fit.
fn sizes_are_valid(sizes: &[f64]) -> bool {
    sizes.iter().all(|s| s.is_finite()) && sizes.windows(2).all(|w| w[0] < w[1])
}

/// Scaling model of a whole reuse profile: one [`HistogramModel`] per
/// pattern plus fits of per-reference cold counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileModel {
    /// Block size the training profiles were measured at.
    pub block_size: u64,
    /// Per-pattern models. Patterns seen at fewer than two sizes are kept
    /// with a constant extrapolation of their last measurement.
    pub patterns: Vec<(PatternKey, HistogramModel)>,
    /// Cold-count fits, indexed like [`ReuseProfile::cold`].
    pub cold: Vec<Fit>,
    /// Fit of total accesses.
    pub accesses: Fit,
}

impl ProfileModel {
    /// Fits profiles measured at several problem sizes (same program, same
    /// block size). `nslices` controls histogram resolution.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two profiles are given, sizes and profiles
    /// differ in length, block sizes differ, or `sizes` is not a finite
    /// strictly-increasing sequence (callers sort and deduplicate their
    /// measurements; fitting a degenerate sequence would produce garbage).
    pub fn fit(sizes: &[f64], profiles: &[&ReuseProfile], nslices: usize) -> ProfileModel {
        assert_eq!(sizes.len(), profiles.len(), "one profile per size");
        assert!(sizes.len() >= 2, "need at least two training sizes");
        assert!(
            sizes_are_valid(sizes),
            "training sizes must be finite and strictly increasing, got {sizes:?}"
        );
        let block_size = profiles[0].block_size;
        assert!(
            profiles.iter().all(|p| p.block_size == block_size),
            "profiles must share a block size"
        );

        // Collect each pattern's histogram per size (empty when absent).
        let mut keys: BTreeMap<PatternKey, Vec<Histogram>> = BTreeMap::new();
        for (i, profile) in profiles.iter().enumerate() {
            for pat in &profile.patterns {
                let entry = keys
                    .entry(pat.key)
                    .or_insert_with(|| vec![Histogram::new(); profiles.len()]);
                entry[i] = pat.histogram.clone();
            }
        }
        let patterns = keys
            .into_iter()
            .filter_map(|(key, hists)| {
                let refs: Vec<&Histogram> = hists.iter().collect();
                HistogramModel::fit(sizes, &refs, nslices).map(|m| (key, m))
            })
            .collect();

        let nrefs = profiles.iter().map(|p| p.cold.len()).max().unwrap_or(0);
        let cold = (0..nrefs)
            .map(|r| {
                let ys: Vec<f64> = profiles
                    .iter()
                    .map(|p| p.cold.get(r).copied().unwrap_or(0) as f64)
                    .collect();
                fit_scaling(sizes, &ys, 2)
            })
            .collect();
        let accesses = fit_scaling(
            sizes,
            &profiles
                .iter()
                .map(|p| p.total_accesses as f64)
                .collect::<Vec<_>>(),
            2,
        );
        ProfileModel {
            block_size,
            patterns,
            cold,
            accesses,
        }
    }

    /// Predicts the full profile at problem size `n`.
    pub fn predict(&self, n: f64) -> ReuseProfile {
        let patterns: Vec<ReusePattern> = self
            .patterns
            .iter()
            .map(|(key, m)| ReusePattern {
                key: *key,
                histogram: m.predict(n),
            })
            .filter(|p| !p.histogram.is_empty())
            .collect();
        let cold: Vec<u64> = self
            .cold
            .iter()
            .map(|f| f.eval(n).round().max(0.0) as u64)
            .collect();
        let total_cold: u64 = cold.iter().sum();
        let total_reuses: u64 = patterns.iter().map(|p| p.histogram.total()).sum();
        ReuseProfile {
            block_size: self.block_size,
            patterns,
            cold,
            total_accesses: total_cold + total_reuses,
            distinct_blocks: total_cold,
            sampling: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_core::analyze_program;
    use reuselens_ir::ProgramBuilder;

    /// Streaming kernel re-swept T times at size n: reuses scale ~n,
    /// distances scale ~n.
    fn stream(n: u64) -> ReuseProfile {
        let mut p = ProgramBuilder::new("stream");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("t", 0, 3, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        analyze_program(&prog, &[64], vec![])
            .unwrap()
            .profiles
            .remove(0)
    }

    #[test]
    fn model_predicts_unmeasured_size_of_streaming_kernel() {
        let sizes = [1024.0, 2048.0, 4096.0];
        let profiles: Vec<ReuseProfile> = sizes.iter().map(|&n| stream(n as u64)).collect();
        let refs: Vec<&ReuseProfile> = profiles.iter().collect();
        let model = ProfileModel::fit(&sizes, &refs, 8);

        let predicted = model.predict(8192.0);
        let actual = stream(8192);
        // Totals scale linearly and must match within a few percent.
        let pt = predicted.total_accesses as f64;
        let at = actual.total_accesses as f64;
        assert!((pt - at).abs() / at < 0.05, "accesses {pt} vs {at}");
        let cold_err = (predicted.total_cold() as f64 - actual.total_cold() as f64).abs()
            / actual.total_cold() as f64;
        assert!(cold_err < 0.05, "cold error {cold_err}");

        // The long (cross-sweep) reuse distance scales with the footprint:
        // a 512-line cache hits at n=1024..4096 (128..512 lines) but must
        // MISS at the predicted n=8192 (1024 lines). The model catches the
        // crossover the paper's tool is built to extrapolate.
        let miss_pred: f64 = predicted
            .patterns
            .iter()
            .map(|p| p.histogram.count_ge(640))
            .sum::<f64>()
            + predicted.total_cold() as f64;
        let miss_actual: f64 = actual
            .patterns
            .iter()
            .map(|p| p.histogram.count_ge(640))
            .sum::<f64>()
            + actual.total_cold() as f64;
        assert!(
            (miss_pred - miss_actual).abs() / miss_actual < 0.1,
            "predicted misses {miss_pred} vs actual {miss_actual}"
        );
        assert!(miss_actual > actual.total_cold() as f64 * 2.0);
    }

    #[test]
    fn histogram_model_predicts_counts_and_distances() {
        let mk = |n: u64| -> Histogram {
            let mut h = Histogram::new();
            h.add_n(n, 2 * n); // distance = n, count = 2n
            h
        };
        let h1 = mk(100);
        let h2 = mk(200);
        let h3 = mk(400);
        let model =
            HistogramModel::fit(&[100.0, 200.0, 400.0], &[&h1, &h2, &h3], 4).unwrap();
        let p = model.predict(800.0);
        assert!((p.total() as f64 - 1600.0).abs() < 20.0);
        let mean = p.mean().unwrap();
        assert!((mean - 800.0).abs() / 800.0 < 0.1, "mean {mean}");
    }

    #[test]
    fn fit_requires_two_sizes() {
        let h = Histogram::new();
        assert!(HistogramModel::fit(&[8.0], &[&h], 4).is_none());
    }

    /// Regression: non-finite or non-increasing size sequences used to
    /// feed straight into the least-squares solve and come back as a
    /// garbage (often NaN-coefficient) fit; now they are rejected.
    #[test]
    fn fit_rejects_degenerate_size_sequences() {
        let mk = |n: u64| {
            let mut h = Histogram::new();
            h.add_n(n, n);
            h
        };
        let (h1, h2, h3) = (mk(100), mk(200), mk(400));
        let hists = [&h1, &h2, &h3];
        assert!(HistogramModel::fit(&[100.0, f64::NAN, 400.0], &hists, 4).is_none());
        assert!(HistogramModel::fit(&[100.0, f64::INFINITY, 400.0], &hists, 4).is_none());
        assert!(HistogramModel::fit(&[400.0, 200.0, 100.0], &hists, 4).is_none());
        assert!(HistogramModel::fit(&[100.0, 100.0, 400.0], &hists, 4).is_none());
        // The well-formed sequence still fits.
        assert!(HistogramModel::fit(&[100.0, 200.0, 400.0], &hists, 4).is_some());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn profile_fit_panics_on_unordered_sizes() {
        let p1 = stream(1024);
        let p2 = stream(2048);
        let _ = ProfileModel::fit(&[2048.0, 1024.0], &[&p1, &p2], 8);
    }

    #[test]
    fn predict_empty_model_is_empty() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        let m = HistogramModel::fit(&[8.0, 16.0], &[&h1, &h2], 4).unwrap();
        assert!(m.predict(32.0).is_empty());
    }
}
