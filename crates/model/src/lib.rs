//! # reuselens-model — cross-input scaling of reuse patterns
//!
//! The paper's tool does not just measure one run: it *models* how each
//! reuse pattern's distance histogram scales with problem size, so cache
//! misses can be predicted for inputs never measured. This crate implements
//! that modeling layer:
//!
//! * [`fit_scaling`] — penalized best-subset least squares over the basis
//!   {1, n, n·log n, n^1.5, n², n³};
//! * [`HistogramModel`] — quantile-sliced histogram scaling;
//! * [`ProfileModel`] — whole-profile models whose [`ProfileModel::predict`]
//!   output plugs straight into `reuselens_cache::predict_level`.
//!
//! Because the analyzer collects distances *per pattern* (source scope ×
//! carrying scope), each fitted family is homogeneous — the refinement the
//! paper credits for more accurate models on regular codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod histmodel;

pub use fit::{fit_scaling, Basis, Fit, ALL_BASIS};
pub use histmodel::{HistogramModel, ProfileModel};
