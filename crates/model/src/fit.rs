//! Least-squares fitting over a small basis of scaling functions.
//!
//! The paper models "the execution frequency and reuse distance scaling of
//! each bin as a linear combination of a set of basis functions". With a
//! handful of training sizes, a full six-term fit is underdetermined, so we
//! enumerate small subsets of the basis (constant + up to two shape terms)
//! and keep the subset with the lowest penalized residual.

use std::fmt;

/// The basis of scaling shapes: value as a function of problem size `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Basis {
    /// Constant.
    One,
    /// Linear `n`.
    N,
    /// `n·log₂(n)`.
    NLogN,
    /// `n^1.5` (surface-to-volume effects).
    N15,
    /// Quadratic `n²`.
    N2,
    /// Cubic `n³`.
    N3,
}

/// Every basis function, in canonical order.
pub const ALL_BASIS: [Basis; 6] = [
    Basis::One,
    Basis::N,
    Basis::NLogN,
    Basis::N15,
    Basis::N2,
    Basis::N3,
];

impl Basis {
    /// Evaluates the basis function at `n`.
    pub fn eval(self, n: f64) -> f64 {
        match self {
            Basis::One => 1.0,
            Basis::N => n,
            Basis::NLogN => {
                if n <= 1.0 {
                    0.0
                } else {
                    n * n.log2()
                }
            }
            Basis::N15 => n.powf(1.5),
            Basis::N2 => n * n,
            Basis::N3 => n * n * n,
        }
    }
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basis::One => write!(f, "1"),
            Basis::N => write!(f, "n"),
            Basis::NLogN => write!(f, "n·log n"),
            Basis::N15 => write!(f, "n^1.5"),
            Basis::N2 => write!(f, "n^2"),
            Basis::N3 => write!(f, "n^3"),
        }
    }
}

/// A fitted model `y(n) = Σ coeff·basis(n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fit {
    /// `(basis, coefficient)` terms.
    pub terms: Vec<(Basis, f64)>,
    /// Root-mean-square residual on the training data.
    pub rms_residual: f64,
}

impl Fit {
    /// Evaluates the fitted function, clamped at zero (counts and distances
    /// are never negative).
    pub fn eval(&self, n: f64) -> f64 {
        self.terms
            .iter()
            .map(|(b, c)| c * b.eval(n))
            .sum::<f64>()
            .max(0.0)
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (b, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:.4}·{b}")?;
        }
        Ok(())
    }
}

/// Solves a dense linear system by Gaussian elimination with partial
/// pivoting; `None` when singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let (pivot, pmax) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))?;
        if pmax < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (x, &p) in rest[0].iter_mut().zip(pivot_row).skip(col) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Least-squares fit of `ys ~ Σ coeff·basis(xs)` for a fixed basis subset.
fn fit_subset(xs: &[f64], ys: &[f64], subset: &[Basis]) -> Option<Fit> {
    let k = subset.len();
    // Require strictly more points than parameters: an exact interpolation
    // has zero residual by construction and extrapolates wildly.
    if xs.len() <= k {
        return None;
    }
    // Normal equations: (BᵀB) c = Bᵀy.
    let mut ata = vec![vec![0.0; k]; k];
    let mut aty = vec![0.0; k];
    for (&x, &y) in xs.iter().zip(ys) {
        let row: Vec<f64> = subset.iter().map(|b| b.eval(x)).collect();
        for i in 0..k {
            aty[i] += row[i] * y;
            for j in 0..k {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    let coeffs = solve(ata, aty)?;
    let mut sse = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let pred: f64 = subset
            .iter()
            .zip(&coeffs)
            .map(|(b, c)| c * b.eval(x))
            .sum();
        sse += (y - pred) * (y - pred);
    }
    Some(Fit {
        terms: subset.iter().copied().zip(coeffs).collect(),
        rms_residual: (sse / xs.len() as f64).sqrt(),
    })
}

/// Fits `ys` as a function of `xs`, selecting the best subset of the basis
/// with at most `1 + max_shape_terms` terms (a constant plus shape terms).
/// Fewer terms win ties within a 1% residual margin (Occam preference).
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length, fewer than 2 points are
/// given, or any training value is non-finite (a NaN or infinity would
/// silently poison every coefficient of the least-squares solve).
///
/// # Examples
///
/// ```
/// use reuselens_model::fit_scaling;
///
/// let xs = [8.0, 16.0, 32.0, 64.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x + 5.0).collect();
/// let fit = fit_scaling(&xs, &ys, 2);
/// assert!((fit.eval(128.0) - (3.0 * 128.0 * 128.0 + 5.0)).abs() < 1.0);
/// ```
pub fn fit_scaling(xs: &[f64], ys: &[f64], max_shape_terms: usize) -> Fit {
    assert_eq!(xs.len(), ys.len(), "xs and ys must pair up");
    assert!(xs.len() >= 2, "need at least two training points");
    assert!(
        xs.iter().chain(ys).all(|v| v.is_finite()),
        "fit_scaling requires finite training data"
    );
    let shapes: Vec<Basis> = ALL_BASIS[1..].to_vec();
    let mut best: Option<Fit> = None;
    let mut consider = |fit: Option<Fit>| {
        if let Some(f) = fit {
            let better = match &best {
                None => true,
                Some(b) => {
                    if f.terms.len() < b.terms.len() {
                        f.rms_residual <= b.rms_residual * 1.01
                    } else if f.terms.len() > b.terms.len() {
                        f.rms_residual < b.rms_residual * 0.99
                    } else {
                        f.rms_residual < b.rms_residual
                    }
                }
            };
            if better {
                best = Some(f);
            }
        }
    };
    // constant only
    consider(fit_subset(xs, ys, &[Basis::One]));
    // constant + one shape
    for &s in &shapes {
        consider(fit_subset(xs, ys, &[Basis::One, s]));
    }
    if max_shape_terms >= 2 {
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                consider(fit_subset(xs, ys, &[Basis::One, shapes[i], shapes[j]]));
            }
        }
    }
    best.expect("constant fit always succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;

    #[test]
    fn solve_small_system() {
        // 2x + y = 5; x - y = 1 => x = 2, y = 1
        let x = solve(vec![vec![2.0, 1.0], vec![1.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        // singular
        assert!(solve(vec![vec![1.0, 1.0], vec![2.0, 2.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn recovers_constant() {
        let xs = [10.0, 20.0, 40.0];
        let ys = [7.0, 7.0, 7.0];
        let fit = fit_scaling(&xs, &ys, 2);
        assert_eq!(fit.terms.len(), 1);
        assert!((fit.eval(1000.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_linear() {
        let xs = [8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 1.0).collect();
        let fit = fit_scaling(&xs, &ys, 2);
        assert!(fit.rms_residual < 1e-6);
        assert!((fit.eval(128.0) - 321.0).abs() < 0.1);
    }

    #[test]
    fn recovers_cubic_mesh_scaling() {
        // Sweep3D-style: cells = n^3
        let xs = [10.0, 20.0, 30.0, 40.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x * x * x).collect();
        let fit = fit_scaling(&xs, &ys, 2);
        let predicted = fit.eval(50.0);
        assert!(
            (predicted - 62_500.0).abs() / 62_500.0 < 0.01,
            "predicted {predicted}"
        );
    }

    /// Regression: a NaN anywhere in the training data used to flow
    /// through the normal equations and come out as a NaN-coefficient
    /// "best" fit; the precondition is now checked up front.
    #[test]
    #[should_panic(expected = "finite training data")]
    fn fit_scaling_rejects_non_finite_input() {
        let _ = fit_scaling(&[8.0, 16.0, 32.0], &[1.0, f64::NAN, 4.0], 2);
    }

    #[test]
    fn eval_clamps_negative() {
        let fit = Fit {
            terms: vec![(Basis::One, -5.0)],
            rms_residual: 0.0,
        };
        assert_eq!(fit.eval(10.0), 0.0);
    }

    #[test]
    fn basis_display_and_eval() {
        assert_eq!(Basis::NLogN.eval(1.0), 0.0);
        assert_eq!(Basis::NLogN.eval(8.0), 24.0);
        assert_eq!(Basis::N15.eval(4.0), 8.0);
        assert_eq!(format!("{}", Basis::N2), "n^2");
        let f = fit_scaling(&[1.0, 2.0], &[1.0, 2.0], 1);
        assert!(!f.to_string().is_empty());
    }

    /// Seeded randomized check over every basis shape and random
    /// coefficients: fitting never panics and interpolation is accurate.
    #[test]
    fn fit_never_panics_and_interpolates_reasonably() {
        let mut rng = SplitMix64::seed_from_u64(0xf17_5ca1e);
        for _case in 0..128 {
            let coeff = 0.1 + rng.gen_f64() * 9.9;
            let which = rng.gen_range(0..5) as usize;
            let shape = ALL_BASIS[1 + which];
            let xs = [8.0, 12.0, 16.0, 24.0, 32.0];
            let ys: Vec<f64> = xs.iter().map(|&x| coeff * shape.eval(x) + 3.0).collect();
            let fit = fit_scaling(&xs, &ys, 2);
            // Interpolation within the training range is accurate.
            let truth = coeff * shape.eval(20.0) + 3.0;
            assert!((fit.eval(20.0) - truth).abs() / truth < 0.05);
        }
    }
}
