//! # reuselens-store — the on-disk columnar trace store
//!
//! The capture engine pays the expensive part of the paper's toolchain
//! once: interpreting a program into a [`TraceBuffer`]. Everything
//! downstream — per-grain replay, per-hierarchy scoring, sampled reruns —
//! only *reads* that buffer. This crate makes the capture outlive the
//! process: a [`TraceStore`] persists each buffer's encoded columns in
//! CRC-framed segment files plus one index file, so one capture serves
//! unlimited later analysis sessions (the `reuselens serve` daemon's
//! whole reason to exist).
//!
//! ## File layout
//!
//! A stored trace `T` with image bytes `I` (the canonical little-endian
//! encoding of its [`ExportedTrace`]) becomes `ceil(len(I) / segment_bytes)`
//! segment files plus one entry in the store-wide index:
//!
//! ```text
//! <dir>/<id>.seg0000.rlseg      +--------+---------+--------------+-------------+
//! <dir>/<id>.seg0001.rlseg  ... | magic  | version | header frame | chunk frame |
//! <dir>/index.rlidx             | RLSEGM | u16 LE  | len,crc,...  | len,crc,... |
//!                               +--------+---------+--------------+-------------+
//! ```
//!
//! Every frame is length-prefixed and guarded by a CRC-32 (IEEE) over its
//! payload — the same framing discipline as the analyzer snapshot format —
//! so torn writes, truncation, bit rot and trailing garbage are all
//! detected, with byte-offset diagnostics, before any trace byte is
//! interpreted. The segment header carries {trace id, segment index and
//! count, the chunk's byte range within the image, and the whole image's
//! length and checksum}; the chunk frame carries the raw image bytes. The
//! index file is one frame listing every entry: id, workload spec, event
//! counts, suggested grains, image checksum, and each segment's range and
//! checksum.
//!
//! Beyond the framing, a loaded image is decoded through the *validating*
//! trace decoder ([`TraceBuffer::import`]) and cross-checked against the
//! index entry's counts — a store never surfaces a buffer that could
//! replay into a silently wrong profile.
//!
//! ## Atomicity
//!
//! Writers publish via dot-prefixed temporaries renamed into place
//! (atomic on POSIX), segments first, index last: a crash mid-`put`
//! leaves orphan segment files no index entry points at — never a torn
//! trace under a valid name. Eviction inverts the order (index first,
//! then segment deletion), so a crash mid-`evict` also degrades to
//! orphans. The threat model is a dying process, as for snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use reuselens_trace::{DecodeError, ExportedTrace, TraceBuffer};

/// Current store format version, shared by segment and index files; any
/// layout change bumps it, and readers reject other versions rather than
/// guessing (the fallback for version skew is a re-capture, exactly as
/// for corruption).
pub const STORE_VERSION: u16 = 1;

/// File magic of segment files.
const MAGIC_SEGMENT: [u8; 6] = *b"RLSEGM";

/// File magic of the index file.
const MAGIC_INDEX: [u8; 6] = *b"RLINDX";

/// Published file name of the store index.
/// File name of the store's index within its directory.
pub const INDEX_FILE: &str = "index.rlidx";

/// Extension of published segment files.
const SEGMENT_EXT: &str = ".rlseg";

/// Default segment size in bytes (of canonical image payload per file).
const DEFAULT_SEGMENT_BYTES: usize = 4 << 20;

/// Longest accepted trace id.
pub const MAX_ID_LEN: usize = 64;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), slice-by-8, tables built at compile time.
//
// The byte-at-a-time loop tops out around 350 MB/s, which made checksum
// passes the dominant cost of `TraceStore::get` on multi-megabyte trace
// images. Slice-by-8 folds eight input bytes per iteration through eight
// derived tables; same polynomial, same values, ~4-6x the throughput.
// ---------------------------------------------------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte b followed by k zero bytes, so the eight
    // lanes of a u64 can be folded independently and XOR-combined.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32 of the concatenation `A || B` given `crc32(A)`, `crc32(B)`,
/// and `B`'s length — zlib's `crc32_combine`, built from the linearity
/// of CRC over GF(2). Appending `len_b` zero bytes to `A` multiplies its
/// CRC register by `x^(8*len_b)` mod the polynomial; that operator is a
/// 32x32 bit matrix applied by square-and-multiply, so combining costs
/// `O(log len_b)` matrix products instead of a pass over the bytes.
///
/// Lets [`TraceStore::get`] derive the assembled image's checksum from
/// the per-chunk checksums it has already verified, without re-hashing
/// the image.
pub fn crc32_combine(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    // mat[i] is the image of bit i under the operator; applying is a
    // masked XOR fold.
    fn apply(mat: &[u32; 32], mut vec: u32) -> u32 {
        let mut out = 0u32;
        let mut i = 0;
        while vec != 0 {
            if vec & 1 != 0 {
                out ^= mat[i];
            }
            vec >>= 1;
            i += 1;
        }
        out
    }
    fn square(mat: &[u32; 32]) -> [u32; 32] {
        let mut out = [0u32; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = apply(mat, mat[i]);
        }
        out
    }
    if len_b == 0 {
        return crc_a;
    }
    // The operator for one zero bit: shift down, feeding bit 0 into the
    // polynomial taps.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    for (i, slot) in odd.iter_mut().enumerate().skip(1) {
        *slot = 1 << (i - 1);
    }
    let mut even = square(&odd); // two zero bits
    odd = square(&even); // four zero bits
    let mut crc = crc_a;
    let mut n = len_b;
    // Walk the bits of the byte count; each squaring doubles the
    // zero-run the operator appends (8 bits, 16, 32, ...).
    loop {
        even = square(&odd);
        if n & 1 != 0 {
            crc = apply(&even, crc);
        }
        n >>= 1;
        if n == 0 {
            break;
        }
        odd = square(&even);
        if n & 1 != 0 {
            crc = apply(&odd, crc);
        }
        n >>= 1;
        if n == 0 {
            break;
        }
    }
    crc ^ crc_b
}

/// CRC-32 (IEEE) of `data` — the checksum guarding every store frame and
/// the assembled trace image.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Why a store operation failed. Every variant that concerns the bytes of
/// a file names the file and the byte offset at which the problem was
/// found, mirroring the snapshot and trace-decoder diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted ("create", "write", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// A file ends before the bytes the format requires — a torn or
    /// truncated write.
    Truncated {
        /// The file concerned.
        path: PathBuf,
        /// Byte offset at which more data was needed.
        offset: u64,
        /// Bytes the decoder needed at that offset.
        needed: u64,
        /// Bytes actually available there.
        have: u64,
    },
    /// A file does not start with the expected magic.
    BadMagic {
        /// The file concerned.
        path: PathBuf,
    },
    /// A file's format version is not one this reader understands.
    UnsupportedVersion {
        /// The file concerned.
        path: PathBuf,
        /// Version found in the file.
        found: u16,
        /// Version this build reads.
        supported: u16,
    },
    /// A frame's checksum does not match its payload.
    CrcMismatch {
        /// The file concerned.
        path: PathBuf,
        /// Which frame ("header", "chunk", "index") — or "image" for the
        /// whole-trace checksum over the assembled segments.
        frame: &'static str,
        /// Byte offset of the frame's payload (0 for the assembled image).
        offset: u64,
        /// Checksum stored in the file (or index).
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The bytes decode but violate a structural invariant.
    Corrupt {
        /// The file concerned.
        path: PathBuf,
        /// Byte offset at which the invariant was found violated.
        offset: u64,
        /// What was wrong.
        what: String,
    },
    /// A file is internally valid but disagrees with the index entry that
    /// points at it — wrong trace, wrong segment, stale generation.
    Mismatch {
        /// The file concerned.
        path: PathBuf,
        /// What disagreed.
        what: String,
    },
    /// The assembled image failed the validating trace decoder.
    Decode {
        /// The trace concerned.
        id: String,
        /// The decoder's diagnosis.
        error: DecodeError,
    },
    /// No stored trace has this id.
    UnknownTrace {
        /// The id requested.
        id: String,
    },
    /// A trace with this id is already stored (evict it first).
    DuplicateTrace {
        /// The id requested.
        id: String,
    },
    /// The id is not a legal trace id.
    InvalidId {
        /// The id requested.
        id: String,
        /// What rule it broke.
        why: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store {op} failed for {}: {message}", path.display())
            }
            StoreError::Truncated { path, offset, needed, have } => write!(
                f,
                "{} truncated at byte {offset}: needed {needed} more bytes, found {have}",
                path.display()
            ),
            StoreError::BadMagic { path } => {
                write!(f, "{} is not a store file (bad magic)", path.display())
            }
            StoreError::UnsupportedVersion { path, found, supported } => write!(
                f,
                "{} has unsupported store version {found} (this build reads version {supported})",
                path.display()
            ),
            StoreError::CrcMismatch { path, frame, offset, stored, computed } => write!(
                f,
                "{} {frame} checksum mismatch at byte {offset}: \
                 stored {stored:#010x}, computed {computed:#010x}",
                path.display()
            ),
            StoreError::Corrupt { path, offset, what } => {
                write!(f, "corrupt store file {} at byte {offset}: {what}", path.display())
            }
            StoreError::Mismatch { path, what } => {
                write!(f, "{} does not match its index entry: {what}", path.display())
            }
            StoreError::Decode { id, error } => {
                write!(f, "stored trace '{id}' failed validation: {error}")
            }
            StoreError::UnknownTrace { id } => write!(f, "no stored trace '{id}'"),
            StoreError::DuplicateTrace { id } => {
                write!(f, "trace '{id}' is already stored (evict it first)")
            }
            StoreError::InvalidId { id, why } => {
                write!(f, "invalid trace id '{id}': {why}")
            }
        }
    }
}

impl Error for StoreError {}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Checks that `id` is a legal trace id: 1..=[`MAX_ID_LEN`] characters
/// from `[A-Za-z0-9_-]`. The alphabet keeps ids safe to embed in file
/// names on every platform and in the line protocol unquoted.
pub fn validate_trace_id(id: &str) -> Result<(), StoreError> {
    let invalid = |why| StoreError::InvalidId {
        id: id.to_string(),
        why,
    };
    if id.is_empty() {
        return Err(invalid("empty"));
    }
    if id.len() > MAX_ID_LEN {
        return Err(invalid("longer than 64 characters"));
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err(invalid("characters outside [A-Za-z0-9_-]"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Byte codec (LE, fixed-width — deterministic byte for byte)
// ---------------------------------------------------------------------------

/// Little-endian byte encoder for frame payloads.
#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc::default()
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Validating little-endian decoder over one frame's payload. `base` is
/// the payload's byte offset within the file, so every diagnostic carries
/// an absolute file offset; `path` names the file.
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    base: u64,
    path: &'a Path,
    /// CRC-32 of `data` as verified by [`read_frame`] (0 for decoders
    /// built outside a frame). Lets callers cross-check the payload
    /// against an independently stored checksum without a second pass.
    crc: u32,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8], base: u64, path: &'a Path) -> Dec<'a> {
        Dec {
            data,
            pos: 0,
            base,
            path,
            crc: 0,
        }
    }

    /// Absolute file offset of the next byte to decode.
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn corrupt(&self, what: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: self.path.to_path_buf(),
            offset: self.offset(),
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let have = self.data.len() - self.pos;
        if have < n {
            return Err(StoreError::Truncated {
                path: self.path.to_path_buf(),
                offset: self.offset(),
                needed: n as u64,
                have: have as u64,
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length prefix about to drive a `Vec` allocation. Rejects any
    /// count that could not possibly fit in the bytes remaining (each
    /// element needs at least `min_elem_bytes`), so a corrupted length
    /// cannot cause an absurd allocation before the data runs out.
    fn len(&mut self, min_elem_bytes: u64) -> Result<usize, StoreError> {
        let at = self.offset();
        let n = self.u64()?;
        let remaining = (self.data.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(StoreError::Corrupt {
                path: self.path.to_path_buf(),
                offset: at,
                what: format!("length {n} cannot fit in the {remaining} bytes remaining"),
            });
        }
        Ok(n as usize)
    }

    fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.len(1)?;
        self.take(n)
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let at = self.offset();
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| StoreError::Corrupt {
            path: self.path.to_path_buf(),
            offset: at,
            what: "string is not valid UTF-8".to_string(),
        })
    }

    /// Fails unless every payload byte has been consumed — a decoded
    /// frame with leftover bytes is corruption, not padding.
    fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.data.len() {
            return Err(StoreError::Corrupt {
                path: self.path.to_path_buf(),
                offset: self.offset(),
                what: format!(
                    "{} unconsumed bytes at end of frame",
                    self.data.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame assembly (shared by segment and index files)
// ---------------------------------------------------------------------------

fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one length-prefixed, CRC-guarded frame starting at `pos`.
fn read_frame<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    frame: &'static str,
    path: &'a Path,
) -> Result<Dec<'a>, StoreError> {
    let need = |offset: usize, n: usize| -> Result<(), StoreError> {
        if bytes.len() < offset + n {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                offset: offset as u64,
                needed: n as u64,
                have: (bytes.len() - offset.min(bytes.len())) as u64,
            });
        }
        Ok(())
    };
    need(*pos, 8)?;
    let len = u32::from_le_bytes([bytes[*pos], bytes[*pos + 1], bytes[*pos + 2], bytes[*pos + 3]])
        as usize;
    let stored = u32::from_le_bytes([
        bytes[*pos + 4],
        bytes[*pos + 5],
        bytes[*pos + 6],
        bytes[*pos + 7],
    ]);
    let payload_at = *pos + 8;
    need(payload_at, len)?;
    let payload = &bytes[payload_at..payload_at + len];
    let computed = crc32(payload);
    if computed != stored {
        return Err(StoreError::CrcMismatch {
            path: path.to_path_buf(),
            frame,
            offset: payload_at as u64,
            stored,
            computed,
        });
    }
    *pos = payload_at + len;
    let mut d = Dec::new(payload, payload_at as u64, path);
    d.crc = computed;
    Ok(d)
}

/// Checks magic + version and returns the offset of the first frame.
fn check_preamble(bytes: &[u8], magic: &[u8; 6], path: &Path) -> Result<usize, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            offset: 0,
            needed: 8,
            have: bytes.len() as u64,
        });
    }
    if bytes[..6] != magic[..] {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: STORE_VERSION,
        });
    }
    Ok(8)
}

fn reject_trailing(bytes: &[u8], pos: usize, path: &Path) -> Result<(), StoreError> {
    if pos != bytes.len() {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: pos as u64,
            what: format!(
                "{} bytes of trailing garbage after the last frame",
                bytes.len() - pos
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Canonical trace image
// ---------------------------------------------------------------------------

/// Encodes an [`ExportedTrace`] into its canonical image: counts, then
/// the five length-prefixed columns, all little-endian and fixed-width —
/// deterministic byte for byte, so the image checksum is reproducible.
fn encode_image(t: &ExportedTrace) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(t.events);
    e.u64(t.accesses);
    e.u64(t.scope_events);
    e.bytes(&t.ops);
    e.bytes(&t.addr_bytes);
    e.bytes(&t.ref_bytes);
    e.bytes(&t.size_bytes);
    e.bytes(&t.scope_bytes);
    e.buf
}

/// Decodes a canonical image back into an [`ExportedTrace`]. `path` names
/// the file the diagnostics should blame (the trace's first segment).
fn decode_image(bytes: &[u8], path: &Path) -> Result<ExportedTrace, StoreError> {
    let mut d = Dec::new(bytes, 0, path);
    let events = d.u64()?;
    let accesses = d.u64()?;
    let scope_events = d.u64()?;
    if accesses.saturating_add(scope_events) != events {
        return Err(d.corrupt(format!(
            "{accesses} accesses + {scope_events} scope events != {events} events"
        )));
    }
    let ops = d.bytes()?.to_vec();
    let addr_bytes = d.bytes()?.to_vec();
    let ref_bytes = d.bytes()?.to_vec();
    let size_bytes = d.bytes()?.to_vec();
    let scope_bytes = d.bytes()?.to_vec();
    d.finish()?;
    Ok(ExportedTrace {
        events,
        accesses,
        scope_events,
        ops,
        addr_bytes,
        ref_bytes,
        size_bytes,
        scope_bytes,
    })
}

// ---------------------------------------------------------------------------
// Index model
// ---------------------------------------------------------------------------

/// One segment's slot in an index entry: which byte range of the trace
/// image the file carries and the checksum of that chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Byte offset of the chunk within the canonical image.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
    /// CRC-32 of the chunk bytes.
    pub crc: u32,
}

/// Caller-supplied metadata stored alongside a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// The workload specification that produced the trace (the daemon
    /// stores the capture request here so replays can rebuild the
    /// program's reference/scope tables).
    pub workload: String,
    /// Grains (block sizes) the capture was intended for — advisory,
    /// recorded so `list` can answer "what is this trace good for".
    pub grains: Vec<u64>,
}

/// One stored trace as the index describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The trace id.
    pub id: String,
    /// Caller metadata recorded at `put` time.
    pub meta: TraceMeta,
    /// Total events the stored columns encode.
    pub events: u64,
    /// Memory-access events.
    pub accesses: u64,
    /// Scope enter/exit events.
    pub scope_events: u64,
    /// Length of the canonical image in bytes.
    pub image_len: u64,
    /// CRC-32 of the whole canonical image.
    pub image_crc: u32,
    /// The segments carrying the image, in image order.
    pub segments: Vec<SegmentInfo>,
}

impl TraceEntry {
    /// Published file name of this trace's `k`-th segment.
    pub fn segment_file(&self, k: usize) -> String {
        segment_file_name(&self.id, k)
    }
}

/// Published file name of trace `id`'s `k`-th segment. Zero-padded so
/// lexicographic order is image order.
pub fn segment_file_name(id: &str, k: usize) -> String {
    format!("{id}.seg{k:04}{SEGMENT_EXT}")
}

fn encode_index(entries: &[TraceEntry]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(entries.len() as u64);
    for t in entries {
        e.str(&t.id);
        e.str(&t.meta.workload);
        e.u64(t.meta.grains.len() as u64);
        for &g in &t.meta.grains {
            e.u64(g);
        }
        e.u64(t.events);
        e.u64(t.accesses);
        e.u64(t.scope_events);
        e.u64(t.image_len);
        e.u32(t.image_crc);
        e.u64(t.segments.len() as u64);
        for s in &t.segments {
            e.u64(s.offset);
            e.u64(s.len);
            e.u32(s.crc);
        }
    }
    let mut out = Vec::with_capacity(16 + e.buf.len());
    out.extend_from_slice(&MAGIC_INDEX);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    push_frame(&mut out, &e.buf);
    out
}

fn decode_index(bytes: &[u8], path: &Path) -> Result<Vec<TraceEntry>, StoreError> {
    let mut pos = check_preamble(bytes, &MAGIC_INDEX, path)?;
    let mut d = read_frame(bytes, &mut pos, "index", path)?;
    reject_trailing(bytes, pos, path)?;
    let count = d.len(8)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let at = d.offset();
        let id = d.str()?;
        validate_trace_id(&id).map_err(|e| StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: at,
            what: e.to_string(),
        })?;
        let workload = d.str()?;
        let ngrains = d.len(8)?;
        let mut grains = Vec::with_capacity(ngrains);
        for _ in 0..ngrains {
            grains.push(d.u64()?);
        }
        let events = d.u64()?;
        let accesses = d.u64()?;
        let scope_events = d.u64()?;
        if accesses.saturating_add(scope_events) != events {
            return Err(d.corrupt(format!(
                "entry '{id}': {accesses} accesses + {scope_events} scope events \
                 != {events} events"
            )));
        }
        let image_len = d.u64()?;
        let image_crc = d.u32()?;
        let nsegs = d.len(20)?;
        if nsegs == 0 {
            return Err(d.corrupt(format!("entry '{id}' has no segments")));
        }
        let mut segments = Vec::with_capacity(nsegs);
        let mut expect_offset = 0u64;
        for k in 0..nsegs {
            let offset = d.u64()?;
            let len = d.u64()?;
            let crc = d.u32()?;
            if offset != expect_offset {
                return Err(d.corrupt(format!(
                    "entry '{id}' segment {k} starts at image byte {offset}, \
                     expected {expect_offset}"
                )));
            }
            expect_offset = expect_offset.saturating_add(len);
            segments.push(SegmentInfo { offset, len, crc });
        }
        if expect_offset != image_len {
            return Err(d.corrupt(format!(
                "entry '{id}' segments cover {expect_offset} bytes of a \
                 {image_len}-byte image"
            )));
        }
        if entries.iter().any(|t: &TraceEntry| t.id == id) {
            return Err(d.corrupt(format!("duplicate entry '{id}'")));
        }
        entries.push(TraceEntry {
            id,
            meta: TraceMeta { workload, grains },
            events,
            accesses,
            scope_events,
            image_len,
            image_crc,
            segments,
        });
    }
    d.finish()?;
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

struct SegmentHeader {
    id: String,
    seg_index: u32,
    seg_count: u32,
    chunk_offset: u64,
    chunk_len: u64,
    image_len: u64,
    image_crc: u32,
}

fn encode_segment(header: &SegmentHeader, chunk: &[u8]) -> Vec<u8> {
    let mut h = Enc::new();
    h.str(&header.id);
    h.u32(header.seg_index);
    h.u32(header.seg_count);
    h.u64(header.chunk_offset);
    h.u64(header.chunk_len);
    h.u64(header.image_len);
    h.u32(header.image_crc);
    let mut out = Vec::with_capacity(24 + h.buf.len() + 8 + chunk.len());
    out.extend_from_slice(&MAGIC_SEGMENT);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    push_frame(&mut out, &h.buf);
    push_frame(&mut out, chunk);
    out
}

/// Decodes one segment file into its header, chunk payload, and the
/// chunk's CRC-32 (already verified against the chunk frame's stored
/// checksum — callers cross-check it against the index copy without
/// re-hashing the payload).
fn decode_segment<'a>(
    bytes: &'a [u8],
    path: &'a Path,
) -> Result<(SegmentHeader, &'a [u8], u32), StoreError> {
    let mut pos = check_preamble(bytes, &MAGIC_SEGMENT, path)?;
    let mut h = read_frame(bytes, &mut pos, "header", path)?;
    let c = read_frame(bytes, &mut pos, "chunk", path)?;
    reject_trailing(bytes, pos, path)?;
    let id = h.str()?;
    let seg_index = h.u32()?;
    let seg_count = h.u32()?;
    let chunk_offset = h.u64()?;
    let chunk_len = h.u64()?;
    let image_len = h.u64()?;
    let image_crc = h.u32()?;
    h.finish()?;
    let chunk = c.data;
    if chunk.len() as u64 != chunk_len {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: c.base,
            what: format!(
                "chunk frame holds {} bytes but the header declares {chunk_len}",
                chunk.len()
            ),
        });
    }
    Ok((
        SegmentHeader {
            id,
            seg_index,
            seg_count,
            chunk_offset,
            chunk_len,
            image_len,
            image_crc,
        },
        chunk,
        c.crc,
    ))
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`TraceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Largest image chunk per segment file, in bytes. Smaller values
    /// mean more files per trace; the default is 4 MiB.
    pub segment_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// An on-disk store of captured [`TraceBuffer`]s: CRC-framed segment
/// files plus one index file in a single directory. See the module docs
/// for the format and atomicity protocol.
///
/// The store is single-writer: `&mut self` methods mutate the directory,
/// `&self` methods only read it. The daemon serializes writers and shares
/// readers, which the borrow rules here mirror exactly.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    config: StoreConfig,
    entries: Vec<TraceEntry>,
}

impl TraceStore {
    /// Opens (creating if needed) the store in `dir` with default tuning.
    ///
    /// # Errors
    ///
    /// Directory creation failures, or any malformation of an existing
    /// index file (a corrupt index is never silently discarded).
    pub fn open(dir: impl Into<PathBuf>) -> Result<TraceStore, StoreError> {
        TraceStore::open_with(dir, StoreConfig::default())
    }

    /// Opens (creating if needed) the store in `dir` with explicit tuning.
    ///
    /// # Errors
    ///
    /// As for [`open`](Self::open).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<TraceStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, &e))?;
        let index_path = dir.join(INDEX_FILE);
        let entries = match fs::read(&index_path) {
            Ok(bytes) => decode_index(&bytes, &index_path)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read", &index_path, &e)),
        };
        Ok(TraceStore {
            dir,
            config,
            entries,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every stored trace, in insertion order.
    pub fn list(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The index entry for `id`, if stored.
    pub fn entry(&self, id: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|t| t.id == id)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let publish = self.dir.join(name);
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
        f.write_all(bytes).map_err(|e| io_err("write", &tmp, &e))?;
        drop(f);
        fs::rename(&tmp, &publish).map_err(|e| io_err("rename", &publish, &e))
    }

    fn publish_index(&self) -> Result<(), StoreError> {
        self.write_atomic(INDEX_FILE, &encode_index(&self.entries))
    }

    /// Stores a captured buffer under `id`: encodes the canonical image,
    /// writes it as CRC-framed segment files (temp + rename each), then
    /// publishes the updated index (temp + rename last, so a crash at any
    /// point leaves at worst orphan segments, never a torn visible
    /// trace). Returns the new index entry.
    ///
    /// # Errors
    ///
    /// Invalid or duplicate ids, and I/O failures. On error the index is
    /// unchanged (orphan segment files may remain).
    pub fn put(
        &mut self,
        id: &str,
        buf: &TraceBuffer,
        meta: TraceMeta,
    ) -> Result<&TraceEntry, StoreError> {
        validate_trace_id(id)?;
        if self.entry(id).is_some() {
            return Err(StoreError::DuplicateTrace { id: id.to_string() });
        }
        let image = encode_image(&buf.export());
        let image_len = image.len() as u64;
        let image_crc = crc32(&image);
        let seg_bytes = self.config.segment_bytes.max(1);
        let seg_count = image.len().div_ceil(seg_bytes).max(1);
        let mut segments = Vec::with_capacity(seg_count);
        for (k, chunk) in chunks_of(&image, seg_bytes, seg_count).enumerate() {
            let offset = (k * seg_bytes) as u64;
            let header = SegmentHeader {
                id: id.to_string(),
                seg_index: k as u32,
                seg_count: seg_count as u32,
                chunk_offset: offset,
                chunk_len: chunk.len() as u64,
                image_len,
                image_crc,
            };
            self.write_atomic(&segment_file_name(id, k), &encode_segment(&header, chunk))?;
            segments.push(SegmentInfo {
                offset,
                len: chunk.len() as u64,
                crc: crc32(chunk),
            });
        }
        self.entries.push(TraceEntry {
            id: id.to_string(),
            meta,
            events: buf.events(),
            accesses: buf.accesses(),
            scope_events: buf.events() - buf.accesses(),
            image_len,
            image_crc,
            segments,
        });
        if let Err(e) = self.publish_index() {
            self.entries.pop();
            return Err(e);
        }
        Ok(self.entries.last().unwrap_or_else(|| unreachable!()))
    }

    /// Loads the stored trace `id` back into a fully validated
    /// [`TraceBuffer`]: every segment's framing and checksums are
    /// verified, the segment headers are cross-checked against the index
    /// entry, the assembled image's whole-trace checksum is re-computed,
    /// and the columns go through the validating trace decoder
    /// ([`TraceBuffer::import`]). `Ok` guarantees the result replays
    /// bit-identically to the buffer that was stored.
    ///
    /// # Errors
    ///
    /// Unknown ids; any framing, checksum, cross-check, or decode
    /// malformation, with file + byte-offset diagnostics.
    pub fn get(&self, id: &str) -> Result<TraceBuffer, StoreError> {
        let entry = self.entry(id).ok_or_else(|| StoreError::UnknownTrace {
            id: id.to_string(),
        })?;
        let mut image = Vec::with_capacity(entry.image_len as usize);
        let mut image_crc = 0u32; // CRC-32 of the empty prefix
        for (k, info) in entry.segments.iter().enumerate() {
            let path = self.dir.join(entry.segment_file(k));
            let bytes = fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
            let (header, chunk, chunk_crc) = decode_segment(&bytes, &path)?;
            let mismatch = |what: String| StoreError::Mismatch {
                path: path.clone(),
                what,
            };
            if header.id != entry.id {
                return Err(mismatch(format!(
                    "segment belongs to trace '{}', index expects '{}'",
                    header.id, entry.id
                )));
            }
            if header.seg_index as usize != k || header.seg_count as usize != entry.segments.len()
            {
                return Err(mismatch(format!(
                    "segment claims position {}/{}, index expects {}/{}",
                    header.seg_index,
                    header.seg_count,
                    k,
                    entry.segments.len()
                )));
            }
            if header.chunk_offset != info.offset || header.chunk_len != info.len {
                return Err(mismatch(format!(
                    "segment covers image bytes {}..{}, index expects {}..{}",
                    header.chunk_offset,
                    header.chunk_offset + header.chunk_len,
                    info.offset,
                    info.offset + info.len
                )));
            }
            if header.image_len != entry.image_len || header.image_crc != entry.image_crc {
                return Err(mismatch(
                    "segment was written for a different image generation".to_string(),
                ));
            }
            // `chunk_crc` was verified against the frame's own stored
            // checksum while decoding; comparing it to the index's
            // independent copy costs no second pass over the payload.
            if chunk_crc != info.crc {
                return Err(StoreError::CrcMismatch {
                    path,
                    frame: "chunk",
                    offset: 0,
                    stored: info.crc,
                    computed: chunk_crc,
                });
            }
            image_crc = crc32_combine(image_crc, chunk_crc, chunk.len() as u64);
            image.extend_from_slice(chunk);
        }
        let first_seg = self.dir.join(entry.segment_file(0));
        if image.len() as u64 != entry.image_len {
            return Err(StoreError::Mismatch {
                path: first_seg,
                what: format!(
                    "assembled image is {} bytes, index expects {}",
                    image.len(),
                    entry.image_len
                ),
            });
        }
        // The assembled image's checksum folds out of the per-chunk
        // checksums (each already verified over its bytes) — exact CRC
        // algebra, not trust, and no third pass over the image.
        if image_crc != entry.image_crc {
            return Err(StoreError::CrcMismatch {
                path: first_seg,
                frame: "image",
                offset: 0,
                stored: entry.image_crc,
                computed: image_crc,
            });
        }
        let exported = decode_image(&image, &first_seg)?;
        if exported.events != entry.events || exported.accesses != entry.accesses {
            return Err(StoreError::Mismatch {
                path: first_seg,
                what: format!(
                    "image declares {} events / {} accesses, index expects {} / {}",
                    exported.events, exported.accesses, entry.events, entry.accesses
                ),
            });
        }
        TraceBuffer::import(exported).map_err(|error| StoreError::Decode {
            id: id.to_string(),
            error,
        })
    }

    /// Removes the stored trace `id`: publishes an index without it
    /// first, then deletes its segment files (so a crash mid-evict
    /// leaves orphan segments, never a dangling index entry).
    ///
    /// # Errors
    ///
    /// Unknown ids and I/O failures. If the index cannot be published the
    /// entry is retained and nothing is deleted.
    pub fn evict(&mut self, id: &str) -> Result<(), StoreError> {
        let at = self
            .entries
            .iter()
            .position(|t| t.id == id)
            .ok_or_else(|| StoreError::UnknownTrace { id: id.to_string() })?;
        let entry = self.entries.remove(at);
        if let Err(e) = self.publish_index() {
            self.entries.insert(at, entry);
            return Err(e);
        }
        for k in 0..entry.segments.len() {
            let path = self.dir.join(entry.segment_file(k));
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err("remove", &path, &e)),
            }
        }
        Ok(())
    }
}

/// Splits `image` into exactly `count` chunks of at most `size` bytes
/// (one possibly-empty chunk when the image is empty).
fn chunks_of(image: &[u8], size: usize, count: usize) -> impl Iterator<Item = &[u8]> {
    (0..count).map(move |k| {
        let lo = (k * size).min(image.len());
        let hi = ((k + 1) * size).min(image.len());
        &image[lo..hi]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{ProgramBuilder, ScopeId};
    use reuselens_trace::{Executor, TraceSink, VecSink};

    fn captured(n: i64) -> TraceBuffer {
        let mut p = ProgramBuilder::new("store_test");
        let a = p.array("a", 8, &[(n + 1) as u64]);
        let b = p.array("b", 8, &[(n + 1) as u64]);
        p.routine("main", |r| {
            r.for_("i", 0, n, |r, i| {
                r.load(a, vec![i.into()]);
                r.store(b, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let mut buf = TraceBuffer::new();
        Executor::new(&prog).run(&mut buf).expect("capture");
        buf
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "kernel stream --n 500".to_string(),
            grains: vec![1, 64, 4096],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rlstore-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip_is_bit_identical() {
        let dir = tmpdir("roundtrip");
        let buf = captured(500);
        let mut store = TraceStore::open(&dir).unwrap();
        let entry = store.put("t1", &buf, meta()).unwrap().clone();
        assert_eq!(entry.events, buf.events());
        assert_eq!(entry.accesses, buf.accesses());
        assert_eq!(entry.meta, meta());
        let loaded = store.get("t1").unwrap();
        let mut a = VecSink::new();
        buf.replay(&mut a);
        let mut b = VecSink::new();
        loaded.replay(&mut b);
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_segment_traces_reassemble() {
        let dir = tmpdir("multiseg");
        let buf = captured(2_000);
        let mut store = TraceStore::open_with(
            &dir,
            StoreConfig { segment_bytes: 512 },
        )
        .unwrap();
        let nsegs = store.put("big", &buf, meta()).unwrap().segments.len();
        assert!(nsegs > 3, "expected several segments, got {nsegs}");
        let loaded = store.get("big").unwrap();
        let mut a = VecSink::new();
        buf.replay(&mut a);
        let mut b = VecSink::new();
        loaded.replay(&mut b);
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_sees_published_traces() {
        let dir = tmpdir("reopen");
        let buf = captured(200);
        {
            let mut store = TraceStore::open(&dir).unwrap();
            store.put("persisted", &buf, meta()).unwrap();
        }
        let store = TraceStore::open(&dir).unwrap();
        assert_eq!(store.list().len(), 1);
        assert_eq!(store.list()[0].id, "persisted");
        assert_eq!(store.list()[0].meta, meta());
        let loaded = store.get("persisted").unwrap();
        assert_eq!(loaded.events(), buf.events());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evict_removes_entry_and_files() {
        let dir = tmpdir("evict");
        let buf = captured(100);
        let mut store = TraceStore::open(&dir).unwrap();
        store.put("gone", &buf, meta()).unwrap();
        store.put("kept", &buf, meta()).unwrap();
        let seg0 = dir.join(segment_file_name("gone", 0));
        assert!(seg0.exists());
        store.evict("gone").unwrap();
        assert!(!seg0.exists());
        assert!(store.entry("gone").is_none());
        assert!(store.get("kept").is_ok());
        assert!(matches!(
            store.evict("gone").unwrap_err(),
            StoreError::UnknownTrace { .. }
        ));
        // The published index agrees after reopen.
        let again = TraceStore::open(&dir).unwrap();
        assert_eq!(again.list().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn id_rules_and_duplicates_are_typed() {
        let dir = tmpdir("ids");
        let buf = captured(10);
        let mut store = TraceStore::open(&dir).unwrap();
        for bad in ["", "has space", "dot.dot", "../escape", &"x".repeat(65)] {
            assert!(
                matches!(
                    store.put(bad, &buf, meta()).unwrap_err(),
                    StoreError::InvalidId { .. }
                ),
                "id {bad:?} was accepted"
            );
        }
        store.put("ok-id_0", &buf, meta()).unwrap();
        assert!(matches!(
            store.put("ok-id_0", &buf, meta()).unwrap_err(),
            StoreError::DuplicateTrace { .. }
        ));
        assert!(matches!(
            store.get("missing").unwrap_err(),
            StoreError::UnknownTrace { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_round_trips() {
        let dir = tmpdir("empty");
        let mut store = TraceStore::open(&dir).unwrap();
        store.put("empty", &TraceBuffer::new(), TraceMeta::default()).unwrap();
        let loaded = store.get("empty").unwrap();
        assert!(loaded.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scope_streams_survive_storage() {
        let dir = tmpdir("scopes");
        let mut buf = TraceBuffer::new();
        buf.enter(ScopeId(1));
        buf.access(
            reuselens_ir::RefId(0),
            0x1000,
            8,
            reuselens_ir::AccessKind::Load,
        );
        buf.enter(ScopeId(2));
        buf.access(
            reuselens_ir::RefId(1),
            0x2000,
            4,
            reuselens_ir::AccessKind::Store,
        );
        buf.exit(ScopeId(2));
        buf.exit(ScopeId(1));
        let mut store = TraceStore::open(&dir).unwrap();
        store.put("scoped", &buf, TraceMeta::default()).unwrap();
        let loaded = store.get("scoped").unwrap();
        let mut a = VecSink::new();
        buf.replay(&mut a);
        let mut b = VecSink::new();
        loaded.replay(&mut b);
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_combine_matches_whole_buffer_crc() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 + i / 13) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 9, 4096, 9_999, 10_000] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "split at {split}"
            );
        }
        // Folding a many-chunk sequence, the way `get` reassembles an
        // image from segment chunks.
        let mut crc = 0u32; // crc32 of the empty prefix
        for part in data.chunks(777) {
            crc = crc32_combine(crc, crc32(part), part.len() as u64);
        }
        assert_eq!(crc, whole);
    }

    #[test]
    fn tmp_files_are_invisible() {
        let dir = tmpdir("tmpfiles");
        let buf = captured(50);
        let mut store = TraceStore::open(&dir).unwrap();
        store.put("real", &buf, meta()).unwrap();
        // Simulated crash debris: a torn temp segment and temp index.
        fs::write(dir.join(".junk.seg0000.rlseg.tmp"), b"torn").unwrap();
        fs::write(dir.join(".index.rlidx.tmp"), b"torn").unwrap();
        let again = TraceStore::open(&dir).unwrap();
        assert_eq!(again.list().len(), 1);
        assert!(again.get("real").is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
