//! # ReuseLens
//!
//! A reuse-distance-based data-locality analysis toolchain — a
//! production-quality Rust reproduction of *"Pinpointing and Exploiting
//! Opportunities for Enhancing Data Reuse"* (Marin & Mellor-Crummey,
//! ISPASS 2008).
//!
//! The toolchain answers the question traditional profilers cannot: not
//! just *where* a program misses in cache, but **why** — which loop drives
//! each reuse of data, how far apart the uses are, and which transformation
//! (interchange, blocking, fusion, strip-mine-and-promote, AoS→SoA
//! splitting, time skewing) would shorten the distance.
//!
//! ## Pipeline
//!
//! 1. Describe the program in the [`ir`] — arrays with real layouts,
//!    loads/stores with symbolic subscripts, loop/routine scopes (this
//!    substitutes for the paper's binary instrumentation).
//! 2. [`trace::Executor`] runs it, emitting one event per access and per
//!    scope entry/exit.
//! 3. [`core::ReuseAnalyzer`] measures reuse distance online, attributing
//!    every reuse arc to a *(sink, source scope, carrying scope)* pattern.
//! 4. [`cache`] predicts per-pattern misses for real hierarchies
//!    (Itanium2 preset) and models run time; a true LRU simulator
//!    cross-checks predictions.
//! 5. [`statics`] recovers stride formulas and cache-line fragmentation
//!    factors; [`metrics`] attributes everything over the scope tree;
//!    [`advisor`] turns patterns into the paper's Table I
//!    recommendations; [`model`] extrapolates to unmeasured input sizes.
//! 6. [`workloads`] model the paper's two case studies (Sweep3D, GTC)
//!    with every evaluated transformation variant.
//!
//! ## Quickstart
//!
//! ```
//! use reuselens::cache::MemoryHierarchy;
//! use reuselens::ir::ProgramBuilder;
//! use reuselens::metrics::run_locality_analysis;
//!
//! // A loop nest that re-sweeps a large array.
//! let mut p = ProgramBuilder::new("quickstart");
//! let a = p.array("a", 8, &[1 << 16]);
//! p.routine("main", |r| {
//!     r.for_("t", 0, 1, |r, _| {
//!         r.for_("i", 0, (1 << 16) - 1, |r, i| {
//!             r.load(a, vec![i.into()]);
//!         });
//!     });
//! });
//! let prog = p.finish();
//!
//! let la = run_locality_analysis(&prog, &MemoryHierarchy::itanium2(), vec![])?;
//! let l2 = la.level("L2").unwrap();
//! // The repeat loop `t` carries the capacity misses.
//! let (carrier, _, share) = l2.top_carriers()[0];
//! assert_eq!(carrier, prog.scope_by_name("t").unwrap());
//! assert!(share > 0.4);
//! # Ok::<(), reuselens::trace::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use reuselens_cache::ReuseLensError;

/// Loop-nest program IR (the analyzable stand-in for an optimized binary).
pub mod ir {
    pub use reuselens_ir::*;
}

/// Trace execution: interprets the IR, emits instrumentation events.
pub mod trace {
    pub use reuselens_trace::*;
}

/// Online reuse-distance analysis per reuse pattern (the paper's core).
pub mod core {
    pub use reuselens_core::*;
}

/// Cache/TLB miss models, LRU simulator, and the cycle model.
pub mod cache {
    pub use reuselens_cache::*;
}

/// Static analysis: stride formulas, reuse groups, fragmentation.
/// (Named `statics` because `static` is a keyword.)
pub mod statics {
    pub use reuselens_static::*;
}

/// Scope-tree attribution, pattern database, text/XML reports.
pub mod metrics {
    pub use reuselens_metrics::*;
}

/// Cross-input scaling models of reuse patterns.
pub mod model {
    pub use reuselens_model::*;
}

/// Table I transformation recommendations.
pub mod advisor {
    pub use reuselens_advisor::*;
}

/// Sweep3D and GTC workload models with the paper's variants.
pub mod workloads {
    pub use reuselens_workloads::*;
}

/// Pipeline observability: hierarchical stage spans, typed counters and
/// gauges, and Prometheus/human exporters. Disabled by default; install a
/// recorder with [`obs::install`] to start collecting.
pub mod obs {
    pub use reuselens_obs::*;
}

/// On-disk columnar trace store: CRC-framed segments plus an index file,
/// published atomically so readers never observe a half-written trace.
pub mod store {
    pub use reuselens_store::*;
}

pub mod serve;
