//! The `reuselens` command-line tool: run the locality analysis on the
//! built-in workload models and print any of the paper's report views.
//!
//! ```text
//! reuselens sweep3d --mesh 16 --report carried
//! reuselens sweep3d --mesh 12 --block 6 --dim-ic --report summary
//! reuselens gtc --mgrid 512 --micell 16 --report frag
//! reuselens gtc --variant 6 --report advice
//! reuselens kernel fig1a --report advice
//! reuselens kernel fig2 --report spatial
//! ```
//!
//! `--scale S` divides the Itanium2 hierarchy capacities by `S`
//! (default 16, matching the CI-sized default workloads; use `--scale 1`
//! with larger sizes for full-scale runs). `--report xml` dumps the
//! hpcviewer-style database to stdout.
//!
//! The paper's train-then-predict workflow:
//!
//! ```text
//! reuselens sweep3d --mesh 8  --save-profile m8.rlp
//! reuselens sweep3d --mesh 10 --save-profile m10.rlp
//! reuselens sweep3d --mesh 12 --save-profile m12.rlp
//! reuselens predict --at 16 --level L2 m8.rlp m10.rlp m12.rlp
//! ```

use reuselens::advisor::{describe, detect_time_loops, Advisor};
use reuselens::cache::MemoryHierarchy;
use reuselens::cache::{miss_curve, predict_level};
use reuselens::core::{
    measure_spatial, read_profiles, write_profiles, AnalyzeOptions, CheckpointOptions,
    ContextAnalyzer, ReplayThreads, SamplingConfig, SavedProfiles,
};
use reuselens::model::ProfileModel;
use reuselens::ir::Program;
use reuselens::obs::{self, MetricsRecorder};
use reuselens::metrics::{
    format_array_breakdown, format_carried_misses, format_fragmentation, format_pattern_db,
    format_spatial, format_summary, run_locality_analysis_checkpointed,
    run_locality_analysis_opts, run_locality_estimate, to_xml, LocalityAnalysis,
};
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig, GtcTransforms};
use reuselens::workloads::kernels;
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};
use reuselens::workloads::BuiltWorkload;
use std::process::ExitCode;

const USAGE: &str = "\
reuselens — reuse-distance data-locality analysis (ISPASS 2008 reproduction)

USAGE:
    reuselens <WORKLOAD> [OPTIONS] [--report <VIEW>]

WORKLOADS:
    sweep3d     the wavefront transport kernel (paper §V-A)
        --mesh <N>         cubic mesh extent        [default: 12]
        --block <B>        angle-blocking factor    [default: 1]
        --dim-ic           interchange src/flux dimensions
        --octant-inner     Ding & Zhong-style octant restructuring (§VI)
        --timesteps <T>    simulated time steps     [default: 1]
    gtc         the particle-in-cell kernel (paper §V-B)
        --mgrid <N>        grid points              [default: 512]
        --micell <M>       particles per cell       [default: 16]
        --variant <0..6>   cumulative transformations (paper Fig. 11 legend)
        --timesteps <T>    simulated time steps     [default: 1]
    kernel <NAME>
        fig1a | fig1b | fig2 | stream | gather | stencil |
        matmul | matmul-tiled | transpose
    predict     fit the scaling model on saved profiles, predict a new size
        --at <N>           problem size to predict    (required)
        --level <L>        cache level                [default: L2]
        <FILES...>         profiles saved with --save-profile
    serve       analysis daemon over an on-disk trace store (DESIGN §4.15)
        --store <DIR>      trace-store directory      (required)
        --listen <ADDR>    accept NDJSON requests over TCP ('127.0.0.1:0'
                           picks a free port; the bound address prints
                           to stderr)
        --stdin            read NDJSON requests from stdin, answer on
                           stdout in request order; exits at EOF
        --workers <N>      job worker threads         [default: 2]
        --queue <N>        queued jobs before 'overloaded' rejections
                                                      [default: 16]
        --scale <S>        capacity divisor for estimate jobs
                                                      [default: 16]
        --serve-metrics <ADDR>  HTTP telemetry with a daemon /jobs
                           endpoint alongside /metrics and /healthz
        --log-jsonl <PATH> append job lifecycle events as JSONL

COMMON OPTIONS:
    --scale <S>     divide Itanium2 capacities by S   [default: 16]
    --report <V>    summary | carried | breakdown=<array> | frag |
                    patterns | patterns-csv | advice | spatial | curve |
                    contexts | program | xml
                                                       [default: summary]
    --level <L>     level for patterns/advice/breakdown [default: L2]
    --predict-static  skip tracing entirely: derive the reuse profiles
                    symbolically from the loop nest (zero trace events)
                    and feed the same report views. Prints how many
                    references the estimator covered vs how many fell
                    back to the indirect-access model. Accuracy bands
                    are enforced by tests/static_vs_dynamic.rs
    --sample-rate <R>  approximate analysis: replay through the
                    constant-space sampled analyzer. R is a rate in
                    (0, 1] (e.g. 0.01), or 'auto:<budget>' to adapt the
                    rate so at most <budget> blocks are tracked. Reported
                    counts become scaled estimates; omit for exact output
    --replay-threads <N|auto>  split each grain's replay across N
                    time-partition workers ('auto' = one per core) and
                    stitch the results — bit-identical to serial replay,
                    faster on large traces. Ignored for adaptive
                    sampling, which is inherently sequential
    --checkpoint-dir <DIR>  crash-safe analysis: snapshot each grain's
                    analyzer state into DIR so an interrupted run can be
                    resumed. Results are bit-identical to a plain run
    --checkpoint-every <N>  events between snapshots   [default: 1000000]
    --resume        continue from the newest valid snapshot in
                    --checkpoint-dir instead of replaying from the start
    --metrics <PATH> write pipeline metrics (Prometheus text) to PATH
                    ('-' for stdout) and print a per-stage timing
                    footer to stderr
    --trace-timeline <PATH>  write a Chrome trace-event timeline of the
                    pipeline's spans to PATH ('-' for stdout); open in
                    chrome://tracing or https://ui.perfetto.dev
    --serve-metrics <ADDR>  serve live telemetry over HTTP while the run
                    is in flight ('127.0.0.1:0' picks a free port; the
                    bound address is printed to stderr). Endpoints:
                    GET /metrics (Prometheus text), GET /healthz
                    (JSON progress/rates/ETA), GET /timeline (Chrome
                    trace of the live span ring, with --trace-timeline)
    --heartbeat <SECS>  print a one-line progress heartbeat to stderr
                    every SECS seconds (fractions allowed) while the
                    run is in flight
    --log-jsonl <PATH>  append structured JSONL events (grain lifecycle,
                    checkpoints, partition stitches, sampling drops,
                    heartbeats) to PATH ('-' for stderr)
    --save-profile <PATH>   save the measured reuse profiles for `predict`
    --size <N>      problem-size tag stored with --save-profile

EXAMPLES:
    reuselens sweep3d --mesh 16 --report carried
    reuselens gtc --report frag
    reuselens kernel fig1a --report advice
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    let flag_value = |key: &str| {
        args.windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].clone())
    };
    let metrics_target = flag_value("--metrics");
    let timeline_target = flag_value("--trace-timeline");
    let serve_addr = flag_value("--serve-metrics");
    let heartbeat = match flag_value("--heartbeat").as_deref().map(str::parse::<f64>) {
        None => None,
        Some(Ok(secs)) if secs > 0.0 && secs.is_finite() => {
            Some(std::time::Duration::from_secs_f64(secs))
        }
        Some(_) => {
            eprintln!("error: --heartbeat takes a positive number of seconds");
            return ExitCode::FAILURE;
        }
    };
    let log_target = flag_value("--log-jsonl");
    // The live service and the heartbeat both read from a recorder, so
    // either flag provisions one even without `--metrics`.
    let recorder = (metrics_target.is_some() || serve_addr.is_some() || heartbeat.is_some())
        .then(|| {
            let r = std::sync::Arc::new(MetricsRecorder::new());
            obs::install(r.clone());
            r
        });
    let timeline = timeline_target.as_ref().map(|_| {
        let t = std::sync::Arc::new(obs::Timeline::new());
        obs::install_timeline(t.clone());
        t
    });
    let events = match &log_target {
        None => None,
        Some(target) => {
            let log = if target == "-" {
                obs::EventLog::stderr()
            } else {
                match obs::EventLog::create(std::path::Path::new(target)) {
                    Ok(log) => log,
                    Err(e) => {
                        eprintln!("error: cannot create event log {target}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let log = std::sync::Arc::new(log);
            obs::install_events(log.clone());
            Some(log)
        }
    };
    obs::emit(obs::EventKind::RunStarted {
        command: args.join(" "),
    });
    let service = recorder.as_ref().and_then(|r| {
        if serve_addr.is_none() && heartbeat.is_none() {
            return None;
        }
        let mut service = obs::TelemetryService::start(
            r.clone(),
            timeline.clone(),
            obs::ServiceConfig {
                heartbeat,
                ..obs::ServiceConfig::default()
            },
        );
        if let Some(addr) = &serve_addr {
            match service.serve(addr) {
                Ok(bound) => eprintln!("serving telemetry on http://{bound}/"),
                Err(e) => {
                    eprintln!("error: cannot serve telemetry on {addr}: {e}");
                    return None;
                }
            }
        }
        Some(service)
    });
    if serve_addr.is_some() && service.is_none() {
        return ExitCode::FAILURE;
    }
    let result = run(&args);
    obs::emit(obs::EventKind::RunFinished {
        ok: result.is_ok(),
    });
    if let Some(service) = service {
        service.shutdown();
    }
    if let Some(events) = &events {
        obs::uninstall_events();
        if events.write_errors() > 0 {
            eprintln!(
                "warning: {} event-log write(s) failed",
                events.write_errors()
            );
        }
    }
    if recorder.is_some() {
        obs::uninstall();
    }
    if let (Some(target), Some(recorder)) = (&metrics_target, &recorder) {
        let snapshot = recorder.snapshot();
        eprint!("{}", snapshot.to_summary());
        let text = snapshot.to_prometheus();
        if target == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(target, text) {
            eprintln!("error: cannot write metrics to {target}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let (Some(target), Some(timeline)) = (&timeline_target, &timeline) {
        obs::uninstall_timeline();
        let snapshot = timeline.snapshot();
        eprintln!(
            "timeline: {} events, {} dropped",
            snapshot.events.len(),
            snapshot.dropped
        );
        let text = snapshot.to_chrome_trace();
        if target == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(target, text) {
            eprintln!("error: cannot write timeline to {target}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `reuselens serve`: start the analysis daemon over a trace store and
/// answer NDJSON jobs on TCP, stdin, or both (DESIGN §4.15).
fn run_serve(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    let fail = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        eprintln!("\n{USAGE}");
        ExitCode::FAILURE
    };
    let Some(store_dir) = flags.value("--store") else {
        return fail("serve requires --store <DIR>".into());
    };
    let listen = flags.value("--listen");
    let use_stdin = flags.flag("--stdin");
    if listen.is_none() && !use_stdin {
        return fail("serve needs --listen <ADDR>, --stdin, or both".into());
    }
    let workers = match flags.parsed("--workers", 2usize) {
        Ok(n) if n >= 1 => n,
        Ok(_) => return fail("--workers must be at least 1".into()),
        Err(e) => return fail(e),
    };
    let queue = match flags.parsed("--queue", 16usize) {
        Ok(n) if n >= 1 => n,
        Ok(_) => return fail("--queue must be at least 1".into()),
        Err(e) => return fail(e),
    };
    let scale = match flags.parsed("--scale", 16u64) {
        Ok(s) if s >= 1 => s,
        Ok(_) => return fail("--scale must be at least 1".into()),
        Err(e) => return fail(e),
    };
    // Counters/gauges and the JSONL event stream reconcile against the
    // daemon's completion records, so the recorder is always on.
    let recorder = std::sync::Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let events = match flags.value("--log-jsonl") {
        None => None,
        Some(target) => {
            let log = if target == "-" {
                obs::EventLog::stderr()
            } else {
                match obs::EventLog::create(std::path::Path::new(target)) {
                    Ok(log) => log,
                    Err(e) => return fail(format!("cannot create event log {target}: {e}")),
                }
            };
            let log = std::sync::Arc::new(log);
            obs::install_events(log.clone());
            Some(log)
        }
    };
    obs::emit(obs::EventKind::RunStarted {
        command: std::iter::once("serve")
            .chain(args.iter().map(String::as_str))
            .collect::<Vec<_>>()
            .join(" "),
    });
    let mut config = reuselens::serve::DaemonConfig::new(store_dir);
    config.workers = workers;
    config.queue = queue;
    config.scale = scale;
    let daemon = match reuselens::serve::Daemon::start(config) {
        Ok(daemon) => std::sync::Arc::new(daemon),
        Err(e) => return fail(format!("cannot open store {store_dir}: {e}")),
    };
    let service = match flags.value("--serve-metrics") {
        None => None,
        Some(addr) => {
            let mut service = obs::TelemetryService::start(
                recorder.clone(),
                None,
                obs::ServiceConfig {
                    jobs: Some(daemon.jobs_callback()),
                    ..obs::ServiceConfig::default()
                },
            );
            match service.serve(addr) {
                Ok(bound) => eprintln!("serving telemetry on http://{bound}/"),
                Err(e) => {
                    daemon.shutdown();
                    return fail(format!("cannot serve telemetry on {addr}: {e}"));
                }
            }
            Some(service)
        }
    };
    if let Some(addr) = listen {
        match daemon.serve(addr) {
            Ok(bound) => eprintln!("accepting analysis jobs on {bound}"),
            Err(e) => {
                daemon.shutdown();
                return fail(format!("cannot listen on {addr}: {e}"));
            }
        }
    }
    let result = if use_stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        reuselens::serve::run_stdin(&daemon, stdin.lock(), stdout.lock())
    } else {
        // TCP-only mode: stay up until stdin reaches EOF (Ctrl-D, or the
        // supervisor closing the pipe), then drain and exit cleanly.
        eprintln!("close stdin (Ctrl-D) to shut down");
        let mut sink = String::new();
        loop {
            sink.clear();
            match std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        Ok(())
    };
    daemon.shutdown();
    obs::emit(obs::EventKind::RunFinished {
        ok: result.is_ok(),
    });
    if let Some(service) = service {
        service.shutdown();
    }
    if let Some(events) = &events {
        obs::uninstall_events();
        if events.write_errors() > 0 {
            eprintln!(
                "warning: {} event-log write(s) failed",
                events.write_errors()
            );
        }
    }
    obs::uninstall();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: stdin transport failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` and boolean `--key`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for {key}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(workload) = args.first() else {
        return Err("missing workload".into());
    };
    if workload == "help" || workload == "--help" || workload == "-h" {
        println!("{USAGE}");
        return Ok(());
    }
    let flags = Flags { args: &args[1..] };
    if workload == "predict" {
        return run_predict(&flags);
    }
    let scale: u64 = flags.parsed("--scale", 16)?;
    let hierarchy = if scale <= 1 {
        MemoryHierarchy::itanium2()
    } else {
        MemoryHierarchy::itanium2_scaled(scale)
    };
    let report = flags.value("--report").unwrap_or("summary");
    let level = flags.value("--level").unwrap_or("L2");
    let sampling = parse_sampling(&flags)?;
    let replay_threads = parse_replay_threads(&flags)?;

    let w = build_workload(workload.as_str(), &flags)?;
    eprintln!(
        "analyzing `{}` on {hierarchy} ...",
        w.program.name()
    );

    if report == "program" {
        print!("{}", w.program);
        return Ok(());
    }
    if report == "contexts" {
        // Calling-context-sensitive view (paper §IV extension): the top
        // context-split patterns by reuse count.
        let mut an = ContextAnalyzer::new(&w.program, hierarchy.levels[0].line_size);
        let mut exec = reuselens::trace::Executor::new(&w.program);
        for (arr, data) in &w.index_arrays {
            exec.set_index_array(*arr, data.clone());
        }
        exec.run(&mut an).map_err(|e| e.to_string())?;
        let profile = an.finish();
        let mut rows: Vec<_> = profile.patterns.iter().collect();
        rows.sort_by_key(|p| std::cmp::Reverse(p.histogram.total()));
        println!(
            "{:<26} {:<34} {:>10} {:>12}",
            "sink", "calling context", "reuses", "mean dist"
        );
        for p in rows.iter().take(20) {
            let sink = w.program.reference(p.key.sink);
            println!(
                "{:<26} {:<34} {:>10} {:>12.0}",
                sink.label().chars().take(25).collect::<String>(),
                profile
                    .context_path(&w.program, p.key.context)
                    .chars()
                    .take(33)
                    .collect::<String>(),
                p.histogram.total(),
                p.histogram.mean().unwrap_or(0.0),
            );
        }
        return Ok(());
    }
    if report == "spatial" {
        let profile = measure_spatial(
            &w.program,
            hierarchy.levels[0].line_size,
            w.index_arrays.clone(),
        )
        .map_err(|e| e.to_string())?;
        print!("{}", format_spatial(&w.program, &profile));
        return Ok(());
    }

    if flags.flag("--predict-static") {
        for incompatible in ["--sample-rate", "--replay-threads", "--checkpoint-dir"] {
            if flags.value(incompatible).is_some() {
                return Err(format!(
                    "--predict-static derives profiles without a trace; {incompatible} \
                     configures the trace pipeline and cannot be combined with it"
                ));
            }
        }
        let run = run_locality_estimate(&w.program, &hierarchy, &w.index_arrays);
        eprintln!(
            "static estimate: {} references covered symbolically, {} via indirect fallback",
            run.covered.len(),
            run.fallback.len()
        );
        for r in &run.fallback {
            eprintln!("  fallback: {}", w.program.reference(*r).label());
        }
        return print_report(&w.program, &run.analysis, report, level);
    }

    let opts = AnalyzeOptions {
        sampling,
        replay_threads,
        ..AnalyzeOptions::default()
    };
    let la = match flags.value("--checkpoint-dir") {
        Some(dir) => {
            let every: u64 = flags.parsed("--checkpoint-every", 1_000_000u64)?;
            if every == 0 {
                return Err("--checkpoint-every must be at least 1".into());
            }
            let ckpt = CheckpointOptions {
                dir: dir.into(),
                every,
                resume: flags.flag("--resume"),
            };
            run_locality_analysis_checkpointed(
                &w.program,
                &hierarchy,
                w.index_arrays.clone(),
                &opts,
                &ckpt,
            )
            .map_err(|e| e.to_string())?
        }
        None => {
            if flags.flag("--resume") {
                return Err("--resume requires --checkpoint-dir".into());
            }
            run_locality_analysis_opts(&w.program, &hierarchy, w.index_arrays.clone(), &opts)
                .map_err(|e| e.to_string())?
        }
    };

    if let Some(path) = flags.value("--save-profile") {
        let size: f64 = flags.parsed("--size", default_size(workload, &flags)?)?;
        let saved = SavedProfiles {
            name: w.program.name().to_string(),
            size,
            profiles: la.analysis.profiles.clone(),
        };
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        write_profiles(&saved, std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("saved profiles to {path} (size tag {size})");
    }

    if report == "curve" {
        // Mattson curve at the first cache level's line size.
        let line = hierarchy.levels[0].line_size;
        let profile = la
            .analysis
            .profile_at(line)
            .ok_or("no line-granularity profile")?;
        let caps: Vec<u64> = (4..=22).map(|p| 1u64 << p).collect();
        println!("capacity_blocks,capacity_bytes,misses");
        for (cap, misses) in miss_curve(profile, &caps) {
            println!("{cap},{},{misses:.0}", cap * line);
        }
        return Ok(());
    }

    print_report(&w.program, &la, report, level)
}

/// Parses `--sample-rate 0.01` / `--sample-rate auto:4096`; no flag means
/// exact analysis.
fn parse_sampling(flags: &Flags<'_>) -> Result<SamplingConfig, String> {
    let Some(v) = flags.value("--sample-rate") else {
        return Ok(SamplingConfig::Exact);
    };
    if let Some(budget) = v.strip_prefix("auto:") {
        let budget: u64 = budget
            .parse()
            .map_err(|_| format!("invalid --sample-rate budget in '{v}'"))?;
        if budget == 0 {
            return Err("--sample-rate auto budget must be positive".into());
        }
        return Ok(SamplingConfig::adaptive(budget));
    }
    let rate: f64 = v
        .parse()
        .map_err(|_| format!("invalid --sample-rate '{v}'"))?;
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(format!("--sample-rate must be in (0, 1], got {v}"));
    }
    Ok(SamplingConfig::fixed(rate))
}

/// Parses `--replay-threads 4` / `--replay-threads auto`; no flag means
/// the classic serial replay.
fn parse_replay_threads(flags: &Flags<'_>) -> Result<ReplayThreads, String> {
    match flags.value("--replay-threads") {
        None => Ok(ReplayThreads::Serial),
        Some("auto") => Ok(ReplayThreads::Auto),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("invalid --replay-threads '{v}'"))?;
            if n == 0 {
                return Err("--replay-threads must be at least 1".into());
            }
            Ok(ReplayThreads::Fixed(n))
        }
    }
}

/// The natural problem-size tag per workload (overridable with `--size`).
fn default_size(workload: &str, flags: &Flags<'_>) -> Result<f64, String> {
    Ok(match workload {
        "sweep3d" => flags.parsed("--mesh", 12u64)? as f64,
        "gtc" => flags.parsed("--micell", 16u64)? as f64,
        _ => 0.0,
    })
}

/// `reuselens predict --at N [--level L2] file1.rlp file2.rlp ...`
fn run_predict(flags: &Flags<'_>) -> Result<(), String> {
    let at: f64 = flags
        .value("--at")
        .ok_or("predict requires --at <size>")?
        .parse()
        .map_err(|_| "bad --at value".to_string())?;
    let level = flags.value("--level").unwrap_or("L2");
    let scale: u64 = flags.parsed("--scale", 16)?;
    let hierarchy = if scale <= 1 {
        MemoryHierarchy::itanium2()
    } else {
        MemoryHierarchy::itanium2_scaled(scale)
    };
    let cfg = hierarchy
        .level(level)
        .ok_or_else(|| format!("no cache level '{level}'"))?;

    // Positional args: every token that is not a flag or a flag value.
    let mut files = Vec::new();
    let mut skip = false;
    for a in flags.args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = matches!(
                a.as_str(),
                "--at" | "--level" | "--scale" | "--metrics" | "--trace-timeline"
                    | "--sample-rate" | "--replay-threads" | "--checkpoint-dir"
                    | "--checkpoint-every" | "--serve-metrics" | "--heartbeat"
                    | "--log-jsonl"
            );
            continue;
        }
        files.push(a.clone());
    }
    if files.len() < 2 {
        return Err("predict needs at least two saved profiles".into());
    }

    let mut sizes = Vec::new();
    let mut profiles = Vec::new();
    for f in &files {
        let file = std::fs::File::open(f).map_err(|e| format!("cannot open {f}: {e}"))?;
        let saved = read_profiles(std::io::BufReader::new(file))
            .map_err(|e| format!("{f}: {e}"))?;
        let profile = saved
            .profile_at(cfg.line_size)
            .ok_or_else(|| format!("{f} has no profile at {} B lines", cfg.line_size))?
            .clone();
        eprintln!("loaded {f}: size {} ({} accesses)", saved.size, profile.total_accesses);
        if !saved.size.is_finite() {
            return Err(format!("{f} carries a non-finite size tag"));
        }
        sizes.push(saved.size);
        profiles.push(profile);
    }
    // The scaling fit requires strictly increasing sizes; accept the files
    // in any order but refuse two profiles claiming the same size.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[a].total_cmp(&sizes[b]));
    let sorted_sizes: Vec<f64> = order.iter().map(|&i| sizes[i]).collect();
    if sorted_sizes.windows(2).any(|w| w[0] == w[1]) {
        return Err("two saved profiles carry the same size tag; re-save with --size".into());
    }
    let profiles: Vec<_> = order.iter().map(|&i| profiles[i].clone()).collect();
    let sizes = sorted_sizes;
    let refs: Vec<&_> = profiles.iter().collect();
    let model = ProfileModel::fit(&sizes, &refs, 16);
    let predicted_profile = model.predict(at);
    let prediction = predict_level(&predicted_profile, cfg);
    println!("predicted {} misses at size {at}: {:.0}", cfg.name, prediction.total);
    println!("  cold (compulsory): {}", prediction.cold);
    println!("  accesses:          {}", predicted_profile.total_accesses);
    println!(
        "  miss rate:         {:.2}%",
        100.0 * prediction.miss_rate()
    );
    Ok(())
}

fn build_workload(kind: &str, flags: &Flags<'_>) -> Result<BuiltWorkload, String> {
    match kind {
        "sweep3d" => {
            let mesh = flags.parsed("--mesh", 12u64)?;
            let block = flags.parsed("--block", 1u64)?;
            let timesteps = flags.parsed("--timesteps", 1u64)?;
            let mut cfg = SweepConfig::new(mesh).with_timesteps(timesteps);
            if flags.flag("--octant-inner") {
                cfg = cfg.with_octant_inner();
            } else {
                cfg = cfg.with_mi_block(block);
            }
            if flags.flag("--dim-ic") {
                cfg = cfg.with_dim_interchange();
            }
            Ok(build_sweep(&cfg))
        }
        "gtc" => {
            let mgrid = flags.parsed("--mgrid", 512u64)?;
            let micell = flags.parsed("--micell", 16u64)?;
            let variant: usize = flags.parsed("--variant", 0usize)?;
            if variant > 6 {
                return Err("--variant must be 0..=6".into());
            }
            let timesteps = flags.parsed("--timesteps", 1u64)?;
            Ok(build_gtc(
                &GtcConfig::new(mgrid, micell)
                    .with_transforms(GtcTransforms::cumulative(variant))
                    .with_timesteps(timesteps),
            ))
        }
        "kernel" => {
            let name = flags
                .args
                .first()
                .ok_or_else(|| "kernel needs a name".to_string())?;
            match name.as_str() {
                "fig1a" => Ok(kernels::fig1_interchange(
                    512,
                    2048,
                    kernels::Fig1Variant::RowOrder,
                )),
                "fig1b" => Ok(kernels::fig1_interchange(
                    512,
                    2048,
                    kernels::Fig1Variant::Interchanged,
                )),
                "fig2" => Ok(kernels::fig2_fragmentation(64, 16)),
                "stream" => Ok(kernels::streaming(1 << 16, 4)),
                "gather" => Ok(kernels::random_gather(1 << 15, 1 << 14, 3, 42)),
                "stencil" => Ok(kernels::stencil2d(128, 3)),
                "matmul" => Ok(kernels::matmul(96, None)),
                "matmul-tiled" => Ok(kernels::matmul(96, Some(16))),
                "transpose" => Ok(kernels::transpose(256)),
                other => Err(format!("unknown kernel '{other}'")),
            }
        }
        other => Err(format!("unknown workload '{other}'")),
    }
}

fn print_report(
    program: &Program,
    la: &LocalityAnalysis,
    report: &str,
    level: &str,
) -> Result<(), String> {
    let metrics = |name: &str| {
        la.level(name)
            .ok_or_else(|| format!("no level named '{name}'"))
    };
    match report {
        "summary" => {
            print!("{}", format_summary(la));
            println!();
            print!("{}", format_carried_misses(program, &la.all_levels(), 0.05));
        }
        "carried" => {
            print!("{}", format_carried_misses(program, &la.all_levels(), 0.01));
        }
        "frag" => {
            print!("{}", format_fragmentation(program, metrics("L3")?, 10));
        }
        "patterns" => {
            print!("{}", format_pattern_db(program, metrics(level)?, 25));
        }
        "patterns-csv" => {
            print!(
                "{}",
                reuselens::metrics::format_pattern_csv(program, metrics(level)?)
            );
        }
        "advice" => {
            let recs = Advisor::new(program)
                .with_time_loops(detect_time_loops(program))
                .advise(metrics(level)?);
            if recs.is_empty() {
                println!("no significant reuse patterns at {level}");
            }
            for (i, r) in recs.iter().take(10).enumerate() {
                println!(
                    "{:>2}. [{:>10.0} misses] {}",
                    i + 1,
                    r.misses,
                    describe(&r.transformation, program)
                );
                println!("      because: {}", r.rationale);
            }
        }
        "xml" => {
            print!("{}", to_xml(program, la));
        }
        other => {
            if let Some(array_name) = other.strip_prefix("breakdown=") {
                let array = program
                    .array_by_name(array_name)
                    .ok_or_else(|| format!("no array named '{array_name}'"))?;
                print!("{}", format_array_breakdown(program, metrics(level)?, array));
            } else {
                return Err(format!("unknown report '{other}'"));
            }
        }
    }
    Ok(())
}
