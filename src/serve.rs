//! Analysis-as-a-service: a long-running daemon that accepts analysis
//! jobs over a newline-delimited JSON protocol and persists captured
//! traces in an on-disk [`TraceStore`](reuselens_store::TraceStore).
//!
//! One request per line, one response per line. A request is a flat JSON
//! object whose `kind` field selects the job:
//!
//! | kind       | does                                                    |
//! |------------|---------------------------------------------------------|
//! | `capture`  | build a workload, capture its trace, store it under `id`|
//! | `replay`   | load a stored trace, replay it at the requested grains  |
//! | `estimate` | run the zero-trace symbolic estimator on a workload     |
//! | `list`     | enumerate stored traces                                 |
//! | `evict`    | remove a stored trace (index first, then segments)      |
//! | `ping`     | liveness check                                          |
//! | `sleep`    | hold a worker for `ms` milliseconds (diagnostics/tests) |
//!
//! Responses are `{"ok":true,"job":"job-N","kind":...,"seq":S,...}` or
//! `{"ok":false,"job":"job-N","error":{"type":T,"message":M}}`. `seq` is
//! the global completion order — jobs finish concurrently, and the
//! sequence number is the daemon's own record of who finished when.
//!
//! The full protocol grammar, byte layouts, and the job lifecycle state
//! machine are specified in `DESIGN.md` §4.15.
//!
//! # Shape
//!
//! A [`Daemon`] owns a bounded worker pool (default 2 workers) over a
//! bounded queue. [`Daemon::submit_line`] never blocks: a malformed
//! request or a full queue yields an immediate typed rejection; an
//! accepted job is queued and answered through the returned channel when
//! a worker completes it. Every job runs under `catch_unwind`, so a
//! panicking workload kills one job, not the daemon.
//!
//! Transports are thin wrappers over `submit_line`:
//!
//! * [`Daemon::serve`] binds a TCP listener; each connection reads
//!   request lines and writes response lines back in request order.
//! * [`run_stdin`] drives the same loop over stdin/stdout for
//!   `reuselens serve --stdin` (pipelines, tests, environments without
//!   a free port).
//!
//! Telemetry rides the PR 9 plumbing: `jobs_accepted` /
//! `jobs_completed` / `jobs_failed` / `jobs_rejected` counters, the
//! `job_queue_depth` gauge, per-job JSONL events, and a `/jobs` HTTP
//! endpoint fed by [`Daemon::jobs_callback`].

use reuselens_core::{
    analyze_buffer_with, capture_program, write_profiles, AnalysisBudget, AnalyzeOptions,
    ReplayThreads, SamplingConfig, SavedProfiles,
};
use reuselens_metrics::run_locality_estimate;
use reuselens_obs as obs;
use reuselens_store::{self as store, StoreError, TraceMeta, TraceStore};
use reuselens_workloads::gtc::{build as build_gtc, GtcConfig, GtcTransforms};
use reuselens_workloads::kernels;
use reuselens_workloads::sweep3d::{build as build_sweep, SweepConfig};
use reuselens_workloads::BuiltWorkload;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest accepted request line, in bytes. Anything longer is rejected
/// with a typed `parse` error before JSON parsing even starts.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Longest accepted JSON string value.
pub const MAX_STRING_LEN: usize = 4096;

/// Longest accepted JSON array value.
pub const MAX_ARRAY_LEN: usize = 1024;

/// Concurrent TCP connections; clients past this get one error line and
/// a closed socket instead of a growing backlog.
const MAX_CONNECTIONS: usize = 32;

/// Upper bound on `sleep` jobs, so a hostile request cannot pin a worker
/// for longer than this.
const MAX_SLEEP_MS: u64 = 10_000;

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong with one request, typed so clients can
/// dispatch on `error.type` instead of scraping messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The line was not a well-formed request (bad UTF-8, bad JSON,
    /// oversized, nested where flat was required...).
    Parse(String),
    /// The `kind` field named no known job.
    UnknownKind(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field was present but unusable.
    InvalidField {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        why: String,
    },
    /// The job queue was full — the 429 of this protocol. Retry later.
    Overloaded {
        /// The queue capacity that was exhausted.
        queue: usize,
    },
    /// The daemon is draining; no new jobs are accepted.
    ShuttingDown,
    /// The trace store refused the operation.
    Store(StoreError),
    /// The workload could not be built or executed.
    Exec(String),
    /// Replay finished but one or more grains failed.
    Analysis(String),
    /// The job panicked; the message is the payload when it was a string.
    Panic(String),
    /// A side output (e.g. `save`) could not be written.
    Io(String),
}

impl ServeError {
    /// The machine-readable `error.type` tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            ServeError::Parse(_) => "parse",
            ServeError::UnknownKind(_) => "unknown-kind",
            ServeError::MissingField(_) => "missing-field",
            ServeError::InvalidField { .. } => "invalid-field",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutdown",
            ServeError::Store(e) => match e {
                StoreError::UnknownTrace { .. } => "unknown-trace",
                StoreError::DuplicateTrace { .. } => "duplicate-trace",
                StoreError::InvalidId { .. } => "invalid-id",
                _ => "store",
            },
            ServeError::Exec(_) => "exec",
            ServeError::Analysis(_) => "analysis",
            ServeError::Panic(_) => "panic",
            ServeError::Io(_) => "io",
        }
    }

    /// True for errors raised before the job ever ran (counted as
    /// `jobs_rejected`); false for execution failures (`jobs_failed`).
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            ServeError::Parse(_)
                | ServeError::UnknownKind(_)
                | ServeError::MissingField(_)
                | ServeError::InvalidField { .. }
                | ServeError::Overloaded { .. }
                | ServeError::ShuttingDown
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(m) => write!(f, "malformed request: {m}"),
            ServeError::UnknownKind(k) => write!(f, "unknown job kind '{k}'"),
            ServeError::MissingField(name) => write!(f, "missing required field '{name}'"),
            ServeError::InvalidField { field, why } => {
                write!(f, "invalid field '{field}': {why}")
            }
            ServeError::Overloaded { queue } => {
                write!(f, "job queue full ({queue} waiting); retry later")
            }
            ServeError::ShuttingDown => write!(f, "daemon is shutting down"),
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::Exec(m) => write!(f, "workload execution failed: {m}"),
            ServeError::Analysis(m) => write!(f, "replay failed: {m}"),
            ServeError::Panic(m) => write!(f, "job panicked: {m}"),
            ServeError::Io(m) => write!(f, "i/o failure: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        ServeError::Store(e)
    }
}

// ---------------------------------------------------------------------------
// Strict flat-JSON request parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value. The protocol is deliberately flat: a request is
/// one object whose values are scalars or arrays of scalars — nested
/// objects are rejected with a typed error.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type Fields = Vec<(String, Json)>;

impl<'a> JsonParser<'a> {
    fn new(bytes: &'a [u8]) -> JsonParser<'a> {
        JsonParser { bytes, pos: 0 }
    }

    fn err(&self, what: impl fmt::Display) -> ServeError {
        ServeError::Parse(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ServeError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format_args!("expected '{}'", b as char)))
        }
    }

    /// Parses the single top-level object and requires end of input.
    fn object(mut self) -> Result<Fields, ServeError> {
        self.expect(b'{')?;
        let mut fields = Fields::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string()?;
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(self.err(format_args!("duplicate field '{key}'")));
                }
                self.expect(b':')?;
                let value = self.value(0)?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing bytes after request object"));
        }
        Ok(fields)
    }

    fn value(&mut self, depth: usize) -> Result<Json, ServeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                if depth > 0 {
                    return Err(self.err("nested arrays are not allowed"));
                }
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    if items.len() > MAX_ARRAY_LEN {
                        return Err(self.err(format_args!(
                            "array exceeds {MAX_ARRAY_LEN} elements"
                        )));
                    }
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
                Ok(Json::Arr(items))
            }
            Some(b'{') => Err(self.err("nested objects are not allowed")),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, ServeError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format_args!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ServeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format_args!("bad number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, ServeError> {
        self.skip_ws();
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            if out.len() > MAX_STRING_LEN {
                return Err(self.err(format_args!("string exceeds {MAX_STRING_LEN} bytes")));
            }
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(
                                self.err(format_args!("bad escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control byte in string")),
                _ => {
                    // Re-scan the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ServeError> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: require the paired low surrogate.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..=0xDFFF).contains(&first) {
            Err(self.err("lone low surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, ServeError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text =
            std::str::from_utf8(chunk).map_err(|_| self.err("non-hex \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

/// Bytes in the UTF-8 sequence led by `first`, or `None` for an invalid
/// lead byte (continuation bytes and overlong leads).
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x20..=0x7f => Some(1),
        0xc2..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf4 => Some(4),
        _ => None,
    }
}

// --- field accessors over the parsed object --------------------------------

fn field<'a>(fields: &'a Fields, name: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn req_str(fields: &Fields, name: &'static str) -> Result<String, ServeError> {
    match field(fields, name) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ServeError::InvalidField {
            field: name,
            why: "expected a string".into(),
        }),
        None => Err(ServeError::MissingField(name)),
    }
}

fn opt_str(fields: &Fields, name: &'static str) -> Result<Option<String>, ServeError> {
    match field(fields, name) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ServeError::InvalidField {
            field: name,
            why: "expected a string".into(),
        }),
    }
}

fn as_u64(name: &'static str, n: f64) -> Result<u64, ServeError> {
    if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
        Ok(n as u64)
    } else {
        Err(ServeError::InvalidField {
            field: name,
            why: format!("expected a non-negative integer, got {n}"),
        })
    }
}

fn opt_u64(fields: &Fields, name: &'static str) -> Result<Option<u64>, ServeError> {
    match field(fields, name) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(as_u64(name, *n)?)),
        Some(_) => Err(ServeError::InvalidField {
            field: name,
            why: "expected an integer".into(),
        }),
    }
}

fn opt_bool(fields: &Fields, name: &'static str) -> Result<bool, ServeError> {
    match field(fields, name) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(ServeError::InvalidField {
            field: name,
            why: "expected a boolean".into(),
        }),
    }
}

fn opt_u64_array(fields: &Fields, name: &'static str) -> Result<Vec<u64>, ServeError> {
    match field(fields, name) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Json::Num(n) => as_u64(name, *n),
                _ => Err(ServeError::InvalidField {
                    field: name,
                    why: "expected an array of integers".into(),
                }),
            })
            .collect(),
        Some(_) => Err(ServeError::InvalidField {
            field: name,
            why: "expected an array of integers".into(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Workload specs
// ---------------------------------------------------------------------------

/// A buildable workload description, parsed from a request and stored
/// verbatim (as its canonical spec string) with every captured trace so
/// replay jobs can rebuild the exact program the trace came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// `"sweep3d"`, `"gtc"`, or `"kernel:<name>"`.
    pub kind: String,
    /// Sweep3D cubic mesh extent.
    pub mesh: Option<u64>,
    /// Sweep3D angle-blocking factor.
    pub block: Option<u64>,
    /// Sweep3D dimension interchange.
    pub dim_ic: bool,
    /// Sweep3D octant restructuring.
    pub octant_inner: bool,
    /// Simulated time steps (Sweep3D and GTC).
    pub timesteps: Option<u64>,
    /// GTC grid points.
    pub mgrid: Option<u64>,
    /// GTC particles per cell.
    pub micell: Option<u64>,
    /// GTC cumulative transformation variant (0..=6).
    pub variant: Option<u64>,
}

impl WorkloadSpec {
    /// Parses the workload fields out of a request object.
    fn from_fields(fields: &Fields) -> Result<WorkloadSpec, ServeError> {
        let kind = req_str(fields, "workload")?;
        let spec = WorkloadSpec {
            kind,
            mesh: opt_u64(fields, "mesh")?,
            block: opt_u64(fields, "block")?,
            dim_ic: opt_bool(fields, "dim_ic")?,
            octant_inner: opt_bool(fields, "octant_inner")?,
            timesteps: opt_u64(fields, "timesteps")?,
            mgrid: opt_u64(fields, "mgrid")?,
            micell: opt_u64(fields, "micell")?,
            variant: opt_u64(fields, "variant")?,
        };
        spec.check()?;
        Ok(spec)
    }

    /// Validates the spec shape without building it.
    fn check(&self) -> Result<(), ServeError> {
        match self.kind.as_str() {
            "sweep3d" | "gtc" => {}
            k if k.strip_prefix("kernel:").is_some_and(|n| !n.is_empty()) => {}
            other => {
                return Err(ServeError::InvalidField {
                    field: "workload",
                    why: format!(
                        "unknown workload '{other}' (want sweep3d, gtc, or kernel:<name>)"
                    ),
                })
            }
        }
        if self.variant.is_some_and(|v| v > 6) {
            return Err(ServeError::InvalidField {
                field: "variant",
                why: "must be 0..=6".into(),
            });
        }
        Ok(())
    }

    /// The canonical spec string stored in [`TraceMeta::workload`]:
    /// `kind key=value... flag...`, explicitly-set fields only, fixed
    /// order — two equal specs render identically.
    pub fn to_spec_string(&self) -> String {
        let mut out = self.kind.clone();
        let mut kv = |name: &str, v: Option<u64>| {
            if let Some(v) = v {
                let _ = write!(out, " {name}={v}");
            }
        };
        kv("mesh", self.mesh);
        kv("block", self.block);
        kv("timesteps", self.timesteps);
        kv("mgrid", self.mgrid);
        kv("micell", self.micell);
        kv("variant", self.variant);
        if self.dim_ic {
            out.push_str(" dim-ic");
        }
        if self.octant_inner {
            out.push_str(" octant-inner");
        }
        out
    }

    /// Parses a canonical spec string back (the replay path: the stored
    /// trace's metadata → the program that produced it).
    pub fn from_spec_string(spec: &str) -> Result<WorkloadSpec, ServeError> {
        let mut tokens = spec.split_whitespace();
        let kind = tokens
            .next()
            .ok_or_else(|| ServeError::Parse("empty workload spec".into()))?;
        let mut out = WorkloadSpec {
            kind: kind.to_string(),
            mesh: None,
            block: None,
            dim_ic: false,
            octant_inner: false,
            timesteps: None,
            mgrid: None,
            micell: None,
            variant: None,
        };
        for token in tokens {
            match token {
                "dim-ic" => out.dim_ic = true,
                "octant-inner" => out.octant_inner = true,
                kv => {
                    let (key, value) = kv.split_once('=').ok_or_else(|| {
                        ServeError::Parse(format!("bad spec token '{kv}'"))
                    })?;
                    let value: u64 = value.parse().map_err(|_| {
                        ServeError::Parse(format!("bad spec value in '{kv}'"))
                    })?;
                    match key {
                        "mesh" => out.mesh = Some(value),
                        "block" => out.block = Some(value),
                        "timesteps" => out.timesteps = Some(value),
                        "mgrid" => out.mgrid = Some(value),
                        "micell" => out.micell = Some(value),
                        "variant" => out.variant = Some(value),
                        other => {
                            return Err(ServeError::Parse(format!(
                                "unknown spec key '{other}'"
                            )))
                        }
                    }
                }
            }
        }
        out.check()?;
        Ok(out)
    }

    /// Builds the workload (same defaults as the CLI).
    pub fn build(&self) -> Result<BuiltWorkload, ServeError> {
        match self.kind.as_str() {
            "sweep3d" => {
                let mut cfg = SweepConfig::new(self.mesh.unwrap_or(12))
                    .with_timesteps(self.timesteps.unwrap_or(1));
                if self.octant_inner {
                    cfg = cfg.with_octant_inner();
                } else {
                    cfg = cfg.with_mi_block(self.block.unwrap_or(1));
                }
                if self.dim_ic {
                    cfg = cfg.with_dim_interchange();
                }
                Ok(build_sweep(&cfg))
            }
            "gtc" => Ok(build_gtc(
                &GtcConfig::new(self.mgrid.unwrap_or(512), self.micell.unwrap_or(16))
                    .with_transforms(GtcTransforms::cumulative(
                        self.variant.unwrap_or(0) as usize
                    ))
                    .with_timesteps(self.timesteps.unwrap_or(1)),
            )),
            other => {
                let name = other.strip_prefix("kernel:").unwrap_or("");
                match name {
                    "fig1a" => Ok(kernels::fig1_interchange(
                        512,
                        2048,
                        kernels::Fig1Variant::RowOrder,
                    )),
                    "fig1b" => Ok(kernels::fig1_interchange(
                        512,
                        2048,
                        kernels::Fig1Variant::Interchanged,
                    )),
                    "fig2" => Ok(kernels::fig2_fragmentation(64, 16)),
                    "stream" => Ok(kernels::streaming(1 << 16, 4)),
                    "gather" => Ok(kernels::random_gather(1 << 15, 1 << 14, 3, 42)),
                    "stencil" => Ok(kernels::stencil2d(128, 3)),
                    "matmul" => Ok(kernels::matmul(96, None)),
                    "matmul-tiled" => Ok(kernels::matmul(96, Some(16))),
                    "transpose" => Ok(kernels::transpose(256)),
                    _ => Err(ServeError::InvalidField {
                        field: "workload",
                        why: format!("unknown kernel '{name}'"),
                    }),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Capture {
        id: String,
        spec: WorkloadSpec,
        grains: Vec<u64>,
    },
    Replay(ReplayRequest),
    Estimate {
        source: EstimateSource,
    },
    List,
    Evict {
        id: String,
    },
    Ping,
    Sleep {
        ms: u64,
    },
}

/// What an `estimate` job runs the symbolic estimator over: a workload
/// spec given inline, or the spec recorded with a stored trace.
#[derive(Debug, Clone, PartialEq)]
enum EstimateSource {
    Spec(WorkloadSpec),
    Stored(String),
}

#[derive(Debug, Clone, PartialEq)]
struct ReplayRequest {
    id: String,
    grains: Vec<u64>,
    sampling: SamplingConfig,
    replay_threads: ReplayThreads,
    budget_events: Option<u64>,
    save: Option<String>,
}

impl Request {
    fn kind_name(&self) -> &'static str {
        match self {
            Request::Capture { .. } => "capture",
            Request::Replay(_) => "replay",
            Request::Estimate { .. } => "estimate",
            Request::List => "list",
            Request::Evict { .. } => "evict",
            Request::Ping => "ping",
            Request::Sleep { .. } => "sleep",
        }
    }
}

/// Parses one request line into a [`Request`] or a typed error. Never
/// panics, whatever the bytes.
fn parse_request(line: &[u8]) -> Result<Request, ServeError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ServeError::Parse(format!(
            "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte cap",
            line.len()
        )));
    }
    let text = std::str::from_utf8(line)
        .map_err(|e| ServeError::Parse(format!("request is not UTF-8: {e}")))?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ServeError::Parse("empty request line".into()));
    }
    let fields = JsonParser::new(trimmed.as_bytes()).object()?;
    let kind = req_str(&fields, "kind")?;
    match kind.as_str() {
        "capture" => {
            let id = req_str(&fields, "id")?;
            store::validate_trace_id(&id).map_err(|e| ServeError::InvalidField {
                field: "id",
                why: e.to_string(),
            })?;
            let grains = opt_u64_array(&fields, "grains")?;
            if grains.contains(&0) {
                return Err(ServeError::InvalidField {
                    field: "grains",
                    why: "grains must be at least 1 byte".into(),
                });
            }
            Ok(Request::Capture {
                id,
                spec: WorkloadSpec::from_fields(&fields)?,
                grains,
            })
        }
        "replay" => {
            let id = req_str(&fields, "id")?;
            let sampling = match (
                field(&fields, "sample_rate"),
                opt_u64(&fields, "sample_budget")?,
            ) {
                (None, None) => SamplingConfig::Exact,
                (None, Some(budget)) if budget > 0 => SamplingConfig::adaptive(budget),
                (None, Some(_)) => {
                    return Err(ServeError::InvalidField {
                        field: "sample_budget",
                        why: "must be positive".into(),
                    })
                }
                (Some(Json::Num(rate)), None) if *rate > 0.0 && *rate <= 1.0 => {
                    SamplingConfig::fixed(*rate)
                }
                (Some(_), None) => {
                    return Err(ServeError::InvalidField {
                        field: "sample_rate",
                        why: "must be a number in (0, 1]".into(),
                    })
                }
                (Some(_), Some(_)) => {
                    return Err(ServeError::InvalidField {
                        field: "sample_rate",
                        why: "cannot combine sample_rate with sample_budget".into(),
                    })
                }
            };
            let replay_threads = match field(&fields, "replay_threads") {
                None | Some(Json::Null) => ReplayThreads::Serial,
                Some(Json::Str(s)) if s == "auto" => ReplayThreads::Auto,
                Some(Json::Num(n)) => {
                    let n = as_u64("replay_threads", *n)?;
                    if n == 0 {
                        return Err(ServeError::InvalidField {
                            field: "replay_threads",
                            why: "must be at least 1".into(),
                        });
                    }
                    ReplayThreads::Fixed(n as usize)
                }
                Some(_) => {
                    return Err(ServeError::InvalidField {
                        field: "replay_threads",
                        why: "expected an integer or \"auto\"".into(),
                    })
                }
            };
            let grains = opt_u64_array(&fields, "grains")?;
            if grains.contains(&0) {
                return Err(ServeError::InvalidField {
                    field: "grains",
                    why: "grains must be at least 1 byte".into(),
                });
            }
            Ok(Request::Replay(ReplayRequest {
                id,
                grains,
                sampling,
                replay_threads,
                budget_events: opt_u64(&fields, "budget_events")?,
                save: opt_str(&fields, "save")?,
            }))
        }
        "estimate" => {
            let source = if fields.iter().any(|(k, _)| k == "workload") {
                EstimateSource::Spec(WorkloadSpec::from_fields(&fields)?)
            } else if let Some(id) = opt_str(&fields, "id")? {
                EstimateSource::Stored(id)
            } else {
                return Err(ServeError::MissingField("workload"));
            };
            Ok(Request::Estimate { source })
        }
        "list" => Ok(Request::List),
        "evict" => Ok(Request::Evict {
            id: req_str(&fields, "id")?,
        }),
        "ping" => Ok(Request::Ping),
        "sleep" => Ok(Request::Sleep {
            ms: opt_u64(&fields, "ms")?.unwrap_or(0).min(MAX_SLEEP_MS),
        }),
        other => Err(ServeError::UnknownKind(other.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn error_response(job: &str, e: &ServeError) -> String {
    format!(
        "{{\"ok\":false,\"job\":\"{}\",\"error\":{{\"type\":\"{}\",\"message\":\"{}\"}}}}",
        json_escape(job),
        e.type_name(),
        json_escape(&e.to_string()),
    )
}

fn ok_response(job: &str, kind: &str, seq: u64, payload: &str) -> String {
    let mut out = format!(
        "{{\"ok\":true,\"job\":\"{}\",\"kind\":\"{kind}\",\"seq\":{seq}",
        json_escape(job)
    );
    if !payload.is_empty() {
        out.push(',');
        out.push_str(payload);
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// Tuning for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Directory of the trace store (created if absent).
    pub store_dir: PathBuf,
    /// Worker threads executing jobs (min 1).
    pub workers: usize,
    /// Jobs allowed to wait on the queue before submissions are rejected
    /// with `overloaded` (min 1).
    pub queue: usize,
    /// Hierarchy capacity divisor for `estimate` jobs (the CLI's
    /// `--scale`).
    pub scale: u64,
}

impl DaemonConfig {
    /// A default-tuned config over `store_dir`: 2 workers, a 16-job
    /// queue, scale 16.
    pub fn new(store_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            store_dir: store_dir.into(),
            workers: 2,
            queue: 16,
            scale: 16,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a success response.
    Completed,
    /// Finished with a typed error response.
    Failed,
    /// Refused before running (malformed, queue full, shutting down).
    Rejected,
}

impl JobStatus {
    /// The status name as rendered in `/jobs`.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Rejected => "rejected",
        }
    }
}

/// One job's row in the daemon's job table (the `/jobs` endpoint).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job id (`job-N`, N increasing in submission order).
    pub job: String,
    /// The job kind, or `"?"` when the request never parsed.
    pub kind: &'static str,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Global completion sequence number, once finished.
    pub completed_seq: Option<u64>,
    /// Wall time spent executing, once finished.
    pub wall: Duration,
    /// The error message, for failed and rejected jobs.
    pub error: Option<String>,
}

struct QueuedJob {
    job: String,
    /// Index of this job's row in `State::records`.
    record: usize,
    request: Request,
    reply: mpsc::Sender<String>,
}

struct State {
    queue: VecDeque<QueuedJob>,
    records: Vec<JobRecord>,
    next_job: u64,
    stop: bool,
}

struct Shared {
    store: Mutex<TraceStore>,
    state: Mutex<State>,
    work: Condvar,
    completion_seq: AtomicU64,
    queue_cap: usize,
    scale: u64,
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_store(&self) -> MutexGuard<'_, TraceStore> {
        match self.store.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The analysis daemon: a bounded worker pool over a [`TraceStore`],
/// driven by [`submit_line`](Daemon::submit_line) (and the TCP/stdin
/// transports layered on it). See the module docs for the protocol.
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    listener: Mutex<Option<Listener>>,
}

struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl fmt::Debug for Daemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Daemon")
            .field("workers", &self.worker_count)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Opens (creating if needed) the store and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates store-open failures (unreadable directory, corrupt
    /// index).
    pub fn start(config: DaemonConfig) -> Result<Daemon, StoreError> {
        let store = TraceStore::open(&config.store_dir)?;
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                records: Vec::new(),
                next_job: 1,
                stop: false,
            }),
            work: Condvar::new(),
            completion_seq: AtomicU64::new(0),
            queue_cap: config.queue.max(1),
            scale: config.scale,
        });
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .filter_map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("reuselens-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        let worker_count = workers.len();
        Ok(Daemon {
            shared,
            workers: Mutex::new(workers),
            worker_count,
            listener: Mutex::new(None),
        })
    }

    /// Submits one raw request line. Never blocks: the response (success
    /// or typed error) arrives on the returned channel — immediately for
    /// rejections, after a worker finishes for accepted jobs.
    pub fn submit_line(&self, line: &[u8]) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        let parsed = parse_request(line);
        let mut st = self.shared.lock_state();
        let n = st.next_job;
        st.next_job += 1;
        let job = format!("job-{n}");
        let reject = |mut st: MutexGuard<'_, State>, kind: &'static str, e: &ServeError| {
            st.records.push(JobRecord {
                job: job.clone(),
                kind,
                status: JobStatus::Rejected,
                completed_seq: None,
                wall: Duration::ZERO,
                error: Some(e.to_string()),
            });
            drop(st);
            obs::add(obs::Counter::JobsRejected, 1);
            obs::emit(obs::EventKind::JobRejected {
                job: job.clone(),
                reason: e.to_string(),
            });
            let _ = tx.send(error_response(&job, e));
        };
        match parsed {
            Err(e) => reject(st, "?", &e),
            Ok(request) => {
                let kind = request.kind_name();
                if st.stop {
                    reject(st, kind, &ServeError::ShuttingDown);
                } else if st.queue.len() >= self.shared.queue_cap {
                    let e = ServeError::Overloaded {
                        queue: self.shared.queue_cap,
                    };
                    reject(st, kind, &e);
                } else {
                    let record = st.records.len();
                    st.records.push(JobRecord {
                        job: job.clone(),
                        kind,
                        status: JobStatus::Queued,
                        completed_seq: None,
                        wall: Duration::ZERO,
                        error: None,
                    });
                    st.queue.push_back(QueuedJob {
                        job: job.clone(),
                        record,
                        request,
                        reply: tx,
                    });
                    let depth = st.queue.len() as u64;
                    drop(st);
                    obs::add(obs::Counter::JobsAccepted, 1);
                    obs::set_gauge(obs::Gauge::JobQueueDepth, depth);
                    obs::emit(obs::EventKind::JobAccepted {
                        job,
                        kind: kind.to_string(),
                    });
                    self.shared.work.notify_one();
                }
            }
        }
        rx
    }

    /// A snapshot of the job table, submission order.
    pub fn job_records(&self) -> Vec<JobRecord> {
        self.shared.lock_state().records.clone()
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_state().queue.len()
    }

    /// Renders the job table as the `/jobs` JSON document.
    pub fn jobs_json(&self) -> String {
        jobs_json(&self.shared)
    }

    /// A callback rendering [`jobs_json`](Self::jobs_json), shaped for
    /// [`ServiceConfig::jobs`](reuselens_obs::ServiceConfig) — wires the
    /// telemetry service's `/jobs` endpoint to this daemon.
    pub fn jobs_callback(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let shared = self.shared.clone();
        Arc::new(move || jobs_json(&shared))
    }

    /// Binds a TCP listener on `addr` (`"127.0.0.1:0"` picks a free
    /// port); each connection is served request-line → response-line
    /// until the client disconnects. Returns the bound address.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be resolved or
    /// bound. At most one listener per daemon.
    pub fn serve(self: &Arc<Daemon>, addr: &str) -> io::Result<SocketAddr> {
        let mut addrs = addr.to_socket_addrs()?;
        let resolved = addrs.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no address for {addr:?}"),
            )
        })?;
        let listener = TcpListener::bind(resolved)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let daemon = self.clone();
        let thread = std::thread::Builder::new()
            .name("reuselens-accept".into())
            .spawn(move || accept_loop(&listener, &accept_stop, &daemon))?;
        let mut slot = match self.listener.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.is_some() {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(local);
            let _ = thread.join();
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "daemon already has a listener",
            ));
        }
        *slot = Some(Listener {
            addr: local,
            stop,
            thread,
        });
        Ok(local)
    }

    /// Drains the queue, joins the workers, and stops the TCP listener
    /// (if any). Every accepted job is completed and answered before the
    /// workers exit — shutdown loses no responses. Idempotent: a second
    /// call finds nothing left to join and returns immediately.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock_state();
            st.stop = true;
        }
        self.shared.work.notify_all();
        let workers = match self.workers.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for worker in workers {
            let _ = worker.join();
        }
        let listener = match self.listener.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(listener) = listener {
            listener.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(listener.addr);
            let _ = listener.thread.join();
        }
    }
}

fn jobs_json(shared: &Arc<Shared>) -> String {
    let st = shared.lock_state();
    let mut out = format!("{{\"queue_depth\":{},\"jobs\":[", st.queue.len());
    for (i, r) in st.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"job\":\"{}\",\"kind\":\"{}\",\"status\":\"{}\",\"seq\":{},\
             \"wall_ms\":{:.3},\"error\":{}}}",
            json_escape(&r.job),
            r.kind,
            r.status.name(),
            match r.completed_seq {
                Some(s) => s.to_string(),
                None => "null".into(),
            },
            r.wall.as_secs_f64() * 1e3,
            match &r.error {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".into(),
            },
        );
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (job, depth) = {
            let mut st = shared.lock_state();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    let depth = st.queue.len() as u64;
                    st.records[job.record].status = JobStatus::Running;
                    break (job, depth);
                }
                if st.stop {
                    return;
                }
                st = match shared.work.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        obs::set_gauge(obs::Gauge::JobQueueDepth, depth);
        let kind = job.request.kind_name();
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(shared, &job.job, &job.request)
        }));
        let wall = started.elapsed();
        let outcome: Result<String, ServeError> = match outcome {
            Ok(inner) => inner,
            Err(payload) => Err(ServeError::Panic(panic_message(payload.as_ref()))),
        };
        let seq = shared.completion_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let response = match &outcome {
            Ok(payload) => ok_response(&job.job, kind, seq, payload),
            Err(e) => error_response(&job.job, e),
        };
        {
            let mut st = shared.lock_state();
            let record = &mut st.records[job.record];
            record.wall = wall;
            record.completed_seq = Some(seq);
            match &outcome {
                Ok(_) => record.status = JobStatus::Completed,
                Err(e) => {
                    record.status = JobStatus::Failed;
                    record.error = Some(e.to_string());
                }
            }
        }
        match &outcome {
            Ok(_) => {
                obs::add(obs::Counter::JobsCompleted, 1);
                obs::emit(obs::EventKind::JobCompleted {
                    job: job.job.clone(),
                    kind: kind.to_string(),
                    wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
                });
            }
            Err(e) => {
                obs::add(obs::Counter::JobsFailed, 1);
                obs::emit(obs::EventKind::JobFailed {
                    job: job.job.clone(),
                    kind: kind.to_string(),
                    reason: e.to_string(),
                });
            }
        }
        let _ = job.reply.send(response);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Executes one job, returning the success payload (the response fields
/// after `"seq"`) or a typed error.
fn execute(shared: &Arc<Shared>, job: &str, request: &Request) -> Result<String, ServeError> {
    match request {
        Request::Ping => Ok("\"pong\":true".to_string()),
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(*ms));
            Ok(format!("\"slept_ms\":{ms}"))
        }
        Request::List => {
            let store = shared.lock_store();
            let mut payload = String::from("\"traces\":[");
            for (i, t) in store.list().iter().enumerate() {
                if i > 0 {
                    payload.push(',');
                }
                let _ = write!(
                    payload,
                    "{{\"id\":\"{}\",\"workload\":\"{}\",\"events\":{},\"accesses\":{},\
                     \"image_len\":{},\"segments\":{}}}",
                    json_escape(&t.id),
                    json_escape(&t.meta.workload),
                    t.events,
                    t.accesses,
                    t.image_len,
                    t.segments.len(),
                );
            }
            payload.push(']');
            Ok(payload)
        }
        Request::Evict { id } => {
            let mut store = shared.lock_store();
            store.evict(id)?;
            Ok(format!("\"evicted\":\"{}\"", json_escape(id)))
        }
        Request::Capture { id, spec, grains } => {
            let w = spec.build()?;
            let (buffer, _report) = capture_program(&w.program, w.index_arrays.clone())
                .map_err(|e| ServeError::Exec(e.to_string()))?;
            let meta = TraceMeta {
                workload: spec.to_spec_string(),
                grains: grains.clone(),
            };
            let mut store = shared.lock_store();
            let entry = store.put(id, &buffer, meta)?;
            Ok(format!(
                "\"id\":\"{}\",\"events\":{},\"accesses\":{},\"image_len\":{},\
                 \"image_crc\":{},\"segments\":{}",
                json_escape(id),
                entry.events,
                entry.accesses,
                entry.image_len,
                entry.image_crc,
                entry.segments.len(),
            ))
        }
        Request::Replay(req) => execute_replay(shared, job, req),
        Request::Estimate { source } => {
            let spec = match source {
                EstimateSource::Spec(spec) => spec.clone(),
                EstimateSource::Stored(id) => {
                    let store = shared.lock_store();
                    let entry =
                        store
                            .entry(id)
                            .ok_or_else(|| StoreError::UnknownTrace {
                                id: id.clone(),
                            })?;
                    WorkloadSpec::from_spec_string(&entry.meta.workload)?
                }
            };
            let w = spec.build()?;
            let hierarchy = if shared.scale <= 1 {
                reuselens_cache::MemoryHierarchy::itanium2()
            } else {
                reuselens_cache::MemoryHierarchy::itanium2_scaled(shared.scale)
            };
            let run = run_locality_estimate(&w.program, &hierarchy, &w.index_arrays);
            let mut payload = format!(
                "\"covered\":{},\"fallback\":{},\"grains\":[",
                run.covered.len(),
                run.fallback.len(),
            );
            for (i, p) in run.analysis.analysis.profiles.iter().enumerate() {
                if i > 0 {
                    payload.push(',');
                }
                let _ = write!(
                    payload,
                    "{{\"grain\":{},\"accesses\":{},\"distinct_blocks\":{}}}",
                    p.block_size, p.total_accesses, p.distinct_blocks,
                );
            }
            payload.push(']');
            Ok(payload)
        }
    }
}

fn execute_replay(
    shared: &Arc<Shared>,
    job: &str,
    req: &ReplayRequest,
) -> Result<String, ServeError> {
    // Read the entry + buffer under the store lock, then analyze without
    // holding it so sibling jobs can use the store meanwhile.
    let (buffer, spec_string, stored_grains) = {
        let store = shared.lock_store();
        let entry = store
            .entry(&req.id)
            .ok_or_else(|| StoreError::UnknownTrace {
                id: req.id.clone(),
            })?;
        let spec_string = entry.meta.workload.clone();
        let stored_grains = entry.meta.grains.clone();
        let buffer = store.get(&req.id)?;
        (buffer, spec_string, stored_grains)
    };
    let grains = if req.grains.is_empty() {
        stored_grains
    } else {
        req.grains.clone()
    };
    if grains.is_empty() {
        return Err(ServeError::InvalidField {
            field: "grains",
            why: format!(
                "no grains requested and trace '{}' stored no default grains",
                req.id
            ),
        });
    }
    let spec = WorkloadSpec::from_spec_string(&spec_string)?;
    let w = spec.build()?;
    let mut budget = AnalysisBudget::unlimited();
    if let Some(n) = req.budget_events {
        budget = budget.with_max_events(n);
    }
    let opts = AnalyzeOptions {
        budget,
        sampling: req.sampling,
        replay_threads: req.replay_threads,
        job: Some(job.to_string()),
        ..AnalyzeOptions::default()
    };
    let partial = analyze_buffer_with(&w.program, &buffer, &grains, &opts);
    if !partial.failures.is_empty() {
        let msg = partial
            .failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        return Err(ServeError::Analysis(msg));
    }
    let saved = SavedProfiles {
        name: w.program.name().to_string(),
        size: 0.0,
        profiles: partial.profiles.clone(),
    };
    let mut canonical = Vec::new();
    write_profiles(&saved, &mut canonical).map_err(|e| ServeError::Io(e.to_string()))?;
    let profiles_crc = store::crc32(&canonical);
    if let Some(path) = &req.save {
        std::fs::write(path, &canonical)
            .map_err(|e| ServeError::Io(format!("cannot write {path}: {e}")))?;
    }
    let mut payload = format!(
        "\"id\":\"{}\",\"events\":{},\"profiles_crc\":{profiles_crc},\"grains\":[",
        json_escape(&req.id),
        buffer.events(),
    );
    for (i, p) in partial.profiles.iter().enumerate() {
        if i > 0 {
            payload.push(',');
        }
        let _ = write!(
            payload,
            "{{\"grain\":{},\"accesses\":{},\"distinct_blocks\":{}}}",
            p.block_size, p.total_accesses, p.distinct_blocks,
        );
    }
    payload.push(']');
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// Reads one `\n`-terminated line with a byte cap. Over-cap lines are
/// returned anyway (one byte past the cap, rest of the line discarded)
/// so the parser rejects them with the typed oversize error.
fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> io::Result<Option<Vec<u8>>> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() { None } else { Some(line) });
        }
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            if line.len() <= cap {
                line.extend_from_slice(&buf[..nl.min(cap + 1 - line.len().min(cap + 1))]);
            }
            if line.len() + nl > cap {
                line.truncate(cap + 1);
            }
            reader.consume(nl + 1);
            return Ok(Some(line));
        }
        let take = buf.len();
        if line.len() <= cap {
            let room = (cap + 1).saturating_sub(line.len());
            line.extend_from_slice(&buf[..take.min(room)]);
        }
        reader.consume(take);
    }
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, daemon: &Arc<Daemon>) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            let mut stream = stream;
            let _ = stream.write_all(
                error_response(
                    "job-0",
                    &ServeError::Overloaded {
                        queue: MAX_CONNECTIONS,
                    },
                )
                .as_bytes(),
            );
            let _ = stream.write_all(b"\n");
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let conn_active = active.clone();
        let daemon = daemon.clone();
        let spawned = std::thread::Builder::new()
            .name("reuselens-conn".into())
            .spawn(move || {
                let mut stream = stream;
                let _ = handle_connection(&mut stream, &daemon);
                conn_active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_connection(stream: &mut TcpStream, daemon: &Arc<Daemon>) -> io::Result<()> {
    let mut reader = io::BufReader::new(stream.try_clone()?);
    while let Some(line) = read_line_capped(&mut reader, MAX_LINE_BYTES)? {
        let rx = daemon.submit_line(&line);
        let Ok(response) = rx.recv() else { break };
        stream.write_all(response.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
    }
    Ok(())
}

/// Drives the daemon from a line reader to a line writer — the
/// `reuselens serve --stdin` transport. Responses come back in request
/// order; submission is pipelined up to the pool's capacity so the
/// workers stay busy. Returns when the input reaches EOF and every
/// submitted job has been answered.
///
/// # Errors
///
/// Propagates read failures from `input` and write failures to `output`.
pub fn run_stdin(
    daemon: &Daemon,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let mut input = input;
    let mut pending: VecDeque<mpsc::Receiver<String>> = VecDeque::new();
    let window = daemon.shared.queue_cap + daemon.worker_count.max(1);
    let flush_front = |pending: &mut VecDeque<mpsc::Receiver<String>>,
                           output: &mut dyn Write|
     -> io::Result<()> {
        if let Some(rx) = pending.pop_front() {
            if let Ok(response) = rx.recv() {
                output.write_all(response.as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
            }
        }
        Ok(())
    };
    while let Some(line) = read_line_capped(&mut input, MAX_LINE_BYTES)? {
        pending.push_back(daemon.submit_line(&line));
        while pending.len() > window {
            flush_front(&mut pending, &mut output)?;
        }
    }
    while !pending.is_empty() {
        flush_front(&mut pending, &mut output)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reuselens-serve-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn recv(rx: mpsc::Receiver<String>) -> String {
        rx.recv_timeout(Duration::from_secs(60)).expect("response")
    }

    #[test]
    fn parser_accepts_the_documented_shapes() {
        let r = parse_request(
            br#"{"kind":"capture","id":"t1","workload":"sweep3d","mesh":6,"grains":[64,4096]}"#,
        )
        .expect("capture parses");
        match r {
            Request::Capture { id, spec, grains } => {
                assert_eq!(id, "t1");
                assert_eq!(spec.mesh, Some(6));
                assert_eq!(grains, vec![64, 4096]);
                assert_eq!(spec.to_spec_string(), "sweep3d mesh=6");
                assert_eq!(
                    WorkloadSpec::from_spec_string(&spec.to_spec_string()).unwrap(),
                    spec
                );
            }
            other => panic!("wrong request {other:?}"),
        }
        assert_eq!(parse_request(br#"{"kind":"ping"}"#), Ok(Request::Ping));
        assert!(matches!(
            parse_request(br#"{"kind":"replay","id":"t1","replay_threads":"auto"}"#),
            Ok(Request::Replay(ReplayRequest {
                replay_threads: ReplayThreads::Auto,
                ..
            }))
        ));
    }

    #[test]
    fn parser_rejects_hostile_lines_with_typed_errors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "parse"),
            (b"not json", "parse"),
            (b"{\"kind\":\"ping\"", "parse"),
            (b"{\"kind\":42}", "invalid-field"),
            (b"{\"kind\":\"frobnicate\"}", "unknown-kind"),
            (b"{\"kind\":\"capture\"}", "missing-field"),
            (b"{\"kind\":\"ping\",\"kind\":\"ping\"}", "parse"),
            (b"{\"kind\":\"ping\",\"x\":{\"nested\":1}}", "parse"),
            (b"{\"kind\":\"ping\",\"x\":[[1]]}", "parse"),
            (b"\xff\xfe{\"kind\":\"ping\"}", "parse"),
            (
                br#"{"kind":"capture","id":"../evil","workload":"sweep3d"}"#,
                "invalid-field",
            ),
            (
                br#"{"kind":"replay","id":"t","sample_rate":7}"#,
                "invalid-field",
            ),
        ];
        for (line, want) in cases {
            let err = parse_request(line).expect_err("must reject");
            assert_eq!(
                err.type_name(),
                *want,
                "line {:?} gave {err:?}",
                String::from_utf8_lossy(line)
            );
            assert!(err.is_rejection());
        }
        // Oversized line.
        let big = vec![b'x'; MAX_LINE_BYTES + 1];
        assert_eq!(parse_request(&big).unwrap_err().type_name(), "parse");
    }

    #[test]
    fn ping_list_evict_round_trip() {
        let daemon =
            Daemon::start(DaemonConfig::new(tmpdir("ping"))).expect("start daemon");
        let pong = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
        assert!(pong.contains("\"ok\":true"), "{pong}");
        assert!(pong.contains("\"pong\":true"), "{pong}");
        let list = recv(daemon.submit_line(br#"{"kind":"list"}"#));
        assert!(list.contains("\"traces\":[]"), "{list}");
        let gone = recv(daemon.submit_line(br#"{"kind":"evict","id":"nope"}"#));
        assert!(gone.contains("\"type\":\"unknown-trace\""), "{gone}");
        let records = daemon.job_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].status, JobStatus::Completed);
        assert_eq!(records[2].status, JobStatus::Failed);
        daemon.shutdown();
    }

    #[test]
    fn capture_then_replay_is_deterministic() {
        let daemon =
            Daemon::start(DaemonConfig::new(tmpdir("capture"))).expect("start daemon");
        let cap = recv(daemon.submit_line(
            br#"{"kind":"capture","id":"s1","workload":"kernel:stream","grains":[64]}"#,
        ));
        assert!(cap.contains("\"ok\":true"), "{cap}");
        let a = recv(daemon.submit_line(br#"{"kind":"replay","id":"s1"}"#));
        let b = recv(daemon.submit_line(br#"{"kind":"replay","id":"s1","grains":[64]}"#));
        assert!(a.contains("\"ok\":true"), "{a}");
        let crc = |s: &str| {
            let tail = s.split("\"profiles_crc\":").nth(1).expect("crc field");
            tail.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        };
        assert_eq!(crc(&a), crc(&b), "replays must agree: {a} vs {b}");
        let dup = recv(daemon.submit_line(
            br#"{"kind":"capture","id":"s1","workload":"kernel:stream"}"#,
        ));
        assert!(dup.contains("\"type\":\"duplicate-trace\""), "{dup}");
        daemon.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let mut config = DaemonConfig::new(tmpdir("full"));
        config.workers = 1;
        config.queue = 1;
        let daemon = Daemon::start(config).expect("start daemon");
        // Occupy the worker, then the queue, then overflow.
        let slow = daemon.submit_line(br#"{"kind":"sleep","ms":400}"#);
        // Wait until the worker picked the sleep up (queue drains to 0).
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.queue_depth() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let queued = daemon.submit_line(br#"{"kind":"ping"}"#);
        let rejected = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
        assert!(rejected.contains("\"type\":\"overloaded\""), "{rejected}");
        assert!(recv(slow).contains("\"slept_ms\":400"));
        assert!(recv(queued).contains("\"pong\":true"));
        daemon.shutdown();
    }

    #[test]
    fn tcp_transport_serves_lines() {
        let daemon = Arc::new(
            Daemon::start(DaemonConfig::new(tmpdir("tcp"))).expect("start daemon"),
        );
        let addr = daemon.serve("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"{\"kind\":\"ping\"}\n{\"kind\":\"list\"}\nnot json\n")
            .expect("send");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut reader = io::BufReader::new(stream);
        let mut lines = Vec::new();
        let mut line = String::new();
        while reader.read_line(&mut line).expect("read") > 0 {
            lines.push(std::mem::take(&mut line));
        }
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("\"pong\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"traces\":[]"), "{}", lines[1]);
        assert!(lines[2].contains("\"type\":\"parse\""), "{}", lines[2]);
        daemon.shutdown();
    }

    #[test]
    fn stdin_transport_answers_in_request_order() {
        let daemon =
            Daemon::start(DaemonConfig::new(tmpdir("stdin"))).expect("start daemon");
        let input = b"{\"kind\":\"sleep\",\"ms\":50}\n{\"kind\":\"ping\"}\n".to_vec();
        let mut output = Vec::new();
        run_stdin(&daemon, io::Cursor::new(input), &mut output).expect("run");
        let text = String::from_utf8(output).expect("utf8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"slept_ms\":50"), "{}", lines[0]);
        assert!(lines[1].contains("\"pong\":true"), "{}", lines[1]);
        daemon.shutdown();
    }

    #[test]
    fn jobs_json_tracks_the_table() {
        let daemon =
            Daemon::start(DaemonConfig::new(tmpdir("jobs"))).expect("start daemon");
        let _ = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
        let _ = recv(daemon.submit_line(b"garbage"));
        let json = daemon.jobs_json();
        assert!(json.starts_with("{\"queue_depth\":"), "{json}");
        assert!(json.contains("\"job\":\"job-1\""), "{json}");
        assert!(json.contains("\"status\":\"completed\""), "{json}");
        assert!(json.contains("\"status\":\"rejected\""), "{json}");
        let cb = daemon.jobs_callback();
        assert_eq!(cb(), daemon.jobs_json());
        daemon.shutdown();
    }
}
