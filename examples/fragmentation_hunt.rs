//! Hunting cache-line fragmentation: an array of records accessed one
//! field at a time wastes most of every fetched line. The static analysis
//! quantifies the waste, the advisor recommends splitting the array, and
//! the SoA layout shows the win.
//!
//! Run with: `cargo run --release --example fragmentation_hunt`

use reuselens::advisor::{Advisor, Transformation};
use reuselens::cache::MemoryHierarchy;
use reuselens::ir::{Expr, Program, ProgramBuilder};
use reuselens::metrics::{format_fragmentation, run_locality_analysis};

/// Particles with 7 fields each; the kinetic-energy loop reads 2 of them.
fn particles(n: u64, soa: bool) -> Program {
    let mut p = ProgramBuilder::new(if soa { "particles-soa" } else { "particles-aos" });
    let dims: &[u64] = if soa { &[n, 7] } else { &[7, n] };
    let part = p.array("particle", 8, dims);
    let sub = move |f: i64, i: Expr| -> Vec<Expr> {
        if soa {
            vec![i, Expr::c(f)]
        } else {
            vec![Expr::c(f), i]
        }
    };
    p.routine("kinetic_energy", |r| {
        r.for_("sweep", 0, 1, |r, _| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(part, sub(3, i.into())); // vx
                r.load(part, sub(4, i.into())); // vy
            });
        });
    });
    p.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 15;
    let h = MemoryHierarchy::itanium2();

    let aos = particles(n, false);
    let la = run_locality_analysis(&aos, &h, vec![])?;
    let l3 = la.level("L3").unwrap();

    println!("== AoS layout: particle(7, n), loop reads 2 fields ==\n");
    print!("{}", format_fragmentation(&aos, l3, 4));

    let frag = la
        .static_analysis
        .fragmentation_of(aos.references()[0].id())
        .unwrap();
    println!("\nstatic fragmentation factor: {frag:.3} (5 of 7 fields unused)");

    let recs = Advisor::new(&aos).advise(l3);
    let split = recs
        .iter()
        .find(|r| matches!(r.transformation, Transformation::SplitArray { .. }))
        .expect("split-array recommendation");
    println!("advisor: {}\n         ({})", split.transformation, split.rationale);

    let soa = particles(n, true);
    let la2 = run_locality_analysis(&soa, &h, vec![])?;
    let before = l3.total_misses;
    let after = la2.level("L3").unwrap().total_misses;
    println!("\nL3 misses AoS: {before:.0}");
    println!("L3 misses SoA: {after:.0}");
    println!("reduction: {:.2}x", before / after);
    Ok(())
}
