//! The paper's §V-A tuning session on the Sweep3D model: find the loop
//! carrying the misses, block the angle dimension, interchange array
//! dimensions, and measure the win at every memory level.
//!
//! Run with: `cargo run --release --example sweep3d_tuning`

use reuselens::cache::{evaluate_program, MemoryHierarchy};
use reuselens::metrics::{format_carried_misses, run_locality_analysis};
use reuselens::workloads::sweep3d::{build, SweepConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = 12;
    let h = MemoryHierarchy::itanium2_scaled(16);
    println!("Sweep3D {mesh}^3 on {h}\n");

    // Step 1: analyze the original code.
    let orig = build(&SweepConfig::new(mesh));
    let la = run_locality_analysis(&orig.program, &h, orig.index_arrays.clone())?;
    println!("-- original: who carries the misses? --");
    print!(
        "{}",
        format_carried_misses(&orig.program, &la.all_levels(), 0.05)
    );
    let idiag = orig.program.scope_by_name("idiag").unwrap();
    let l2 = la.level("L2").unwrap();
    println!(
        "\nThe idiag (wavefront) loop carries {:.0}% of L2 misses: cells that",
        100.0 * l2.carried[idiag.index()] / l2.total_misses
    );
    println!("differ only in the angle coordinate touch the same src/flux/face data");
    println!("on adjacent diagonals, too far apart to stay in cache.\n");

    // Step 2: block the angle dimension (paper Fig. 7) and interchange the
    // src/flux `n` dimension.
    println!("-- applying mi-blocking and dimension interchange --\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "variant", "L2/cell", "L3/cell", "TLB/cell", "cycles/cell"
    );
    for (label, block, dim_ic) in [
        ("original", 1u64, false),
        ("block 2", 2, false),
        ("block 3", 3, false),
        ("block 6", 6, false),
        ("blk6+dimIC", 6, true),
    ] {
        let mut cfg = SweepConfig::new(mesh).with_mi_block(block);
        if dim_ic {
            cfg = cfg.with_dim_interchange();
        }
        let w = build(&cfg);
        let (report, _) = evaluate_program(&w.program, &h, w.index_arrays.clone())?;
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>12.3} {:>12.1}",
            label,
            w.normalize(report.misses_at("L2").unwrap()),
            w.normalize(report.misses_at("L3").unwrap()),
            w.normalize(report.misses_at("TLB").unwrap()),
            w.normalize(report.timing.total()),
        );
    }
    println!("\n(paper: misses drop by integer factors; 2.5x overall speedup)");
    Ok(())
}
