//! Cross-input prediction: measure a kernel at three small sizes, fit the
//! paper's scaling model, and predict cache misses for a size never
//! executed — then verify against a real run.
//!
//! Run with: `cargo run --release --example predict_scaling`

use reuselens::cache::{predict_level, MemoryHierarchy};
use reuselens::core::analyze_program;
use reuselens::model::ProfileModel;
use reuselens::workloads::kernels::stencil2d;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = MemoryHierarchy::itanium2();
    let l2 = &h.levels[0];

    // Train on three grid sizes of a 2-D stencil with a time loop.
    let train_sizes = [64u64, 96, 128];
    let mut profiles = Vec::new();
    for &n in &train_sizes {
        let w = stencil2d(n, 3);
        let analysis = analyze_program(&w.program, &[l2.line_size], vec![])?;
        profiles.push(analysis.profiles.into_iter().next().unwrap());
        println!("measured n={n:<4} ({} accesses)", profiles.last().unwrap().total_accesses);
    }
    let refs: Vec<&_> = profiles.iter().collect();
    let xs: Vec<f64> = train_sizes.iter().map(|&n| n as f64).collect();
    let model = ProfileModel::fit(&xs, &refs, 16);

    // Predict a grid 4x larger than anything measured.
    let target = 512u64;
    let predicted_profile = model.predict(target as f64);
    let predicted = predict_level(&predicted_profile, l2);

    // Ground truth.
    let w = stencil2d(target, 3);
    let analysis = analyze_program(&w.program, &[l2.line_size], vec![])?;
    let actual = predict_level(analysis.profile_at(l2.line_size).unwrap(), l2);

    println!("\nL2 misses at unmeasured n={target}:");
    println!("  model prediction: {:>12.0}", predicted.total);
    println!("  actual run:       {:>12.0}", actual.total);
    let err = 100.0 * (predicted.total - actual.total).abs() / actual.total;
    println!("  relative error:   {err:>11.1}%");
    Ok(())
}
