//! Quickstart: describe a loop nest, run the full locality analysis, and
//! read the tool's answer — which loop *carries* the cache misses.
//!
//! Run with: `cargo run --release --example quickstart`

use reuselens::cache::MemoryHierarchy;
use reuselens::ir::ProgramBuilder;
use reuselens::metrics::{format_carried_misses, format_summary, run_locality_analysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A producer loop writes an array; a consumer loop reads it back; the
    // whole thing repeats over time steps. The array is bigger than L2.
    let n = 1u64 << 16; // 512 KB of f64
    let mut p = ProgramBuilder::new("quickstart");
    let a = p.array("a", 8, &[n]);
    p.routine("main", |r| {
        r.for_("timestep", 0, 2, |r, _| {
            r.for_("produce", 0, (n - 1) as i64, |r, i| {
                r.store(a, vec![i.into()]);
            });
            r.for_("consume", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
    });
    let prog = p.finish();

    // One call: execute, measure reuse distances at line and page
    // granularity, predict Itanium2 misses, attribute everything.
    let hierarchy = MemoryHierarchy::itanium2();
    let la = run_locality_analysis(&prog, &hierarchy, vec![])?;

    println!("analyzed `{}` on {hierarchy}\n", prog.name());
    print!("{}", format_summary(&la));
    println!();
    print!("{}", format_carried_misses(&prog, &la.all_levels(), 0.05));

    // The interpretation the paper teaches: the misses in `consume` are
    // *carried by* the `timestep` loop — data written by `produce` has been
    // evicted before `consume` reads it. Fusing the two loops would shorten
    // the reuse distance.
    let l2 = la.level("L2").unwrap();
    let (carrier, misses, share) = l2.top_carriers()[0];
    println!(
        "\n=> {:.0} L2 misses ({:.0}%) are carried by '{}'",
        misses,
        share * 100.0,
        prog.scope_path(carrier)
    );
    Ok(())
}
