//! The paper's Figure 1 end to end: detect that an outer loop carries the
//! spatial reuse of a column-major array, get the interchange
//! recommendation, apply it, and verify the misses disappear.
//!
//! Run with: `cargo run --release --example loop_interchange`

use reuselens::advisor::{Advisor, Transformation};
use reuselens::cache::MemoryHierarchy;
use reuselens::metrics::run_locality_analysis;
use reuselens::workloads::kernels::{fig1_interchange, Fig1Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m) = (512, 2048);
    let h = MemoryHierarchy::itanium2();

    // Fig. 1(a): DO I / DO J over column-major A(I,J) — the inner loop
    // strides by a whole column, so each cache line is revisited only
    // after the entire row of lines has been touched.
    let before = fig1_interchange(n, m, Fig1Variant::RowOrder);
    let la = run_locality_analysis(&before.program, &h, vec![])?;
    let l2_before = la.level("L2").unwrap().total_misses;

    // Ask the advisor what to do about the dominant pattern.
    let recs = Advisor::new(&before.program).advise(la.level("L2").unwrap());
    let rec = recs.first().expect("a recommendation");
    println!("diagnosis : {}", rec.rationale);
    println!(
        "suggestion: {}",
        reuselens::advisor::describe(&rec.transformation, &before.program)
    );
    assert!(matches!(
        rec.transformation,
        Transformation::LoopInterchange { .. }
    ));

    // Fig. 1(b): interchanged loops.
    let after = fig1_interchange(n, m, Fig1Variant::Interchanged);
    let la2 = run_locality_analysis(&after.program, &h, vec![])?;
    let l2_after = la2.level("L2").unwrap().total_misses;

    println!("\nL2 misses before interchange: {l2_before:.0}");
    println!("L2 misses after  interchange: {l2_after:.0}");
    println!("reduction: {:.1}x", l2_before / l2_after);
    Ok(())
}
