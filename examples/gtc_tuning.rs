//! The paper's §V-B tuning session on the GTC model: rank fragmented
//! arrays, locate carried misses, then apply the six transformations
//! cumulatively and watch every level improve.
//!
//! Run with: `cargo run --release --example gtc_tuning`

use reuselens::cache::{evaluate_program, MemoryHierarchy};
use reuselens::metrics::{format_fragmentation, run_locality_analysis};
use reuselens::workloads::gtc::{build, GtcConfig, GtcTransforms};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mgrid, micell) = (512, 16);
    let h = MemoryHierarchy::itanium2_scaled(16);
    println!("GTC mgrid={mgrid}, {micell} particles/cell on {h}\n");

    // Step 1: the fragmentation view (paper Fig. 9) pinpoints zion.
    let orig = build(&GtcConfig::new(mgrid, micell));
    let la = run_locality_analysis(&orig.program, &h, orig.index_arrays.clone())?;
    println!("-- arrays by fragmentation misses (the AoS smoking gun) --");
    print!(
        "{}",
        format_fragmentation(&orig.program, la.level("L3").unwrap(), 5)
    );

    // Step 2: cumulative transformations (paper Fig. 11).
    println!("\n-- cumulative transformations --\n");
    println!(
        "{:<22} {:>11} {:>11} {:>11} {:>13}",
        "variant", "L2/micell", "L3/micell", "TLB/micell", "cycles/micell"
    );
    let mut first_cycles = None;
    for n in 0..=6 {
        let cfg =
            GtcConfig::new(mgrid, micell).with_transforms(GtcTransforms::cumulative(n));
        let w = build(&cfg);
        let (report, _) = evaluate_program(&w.program, &h, w.index_arrays.clone())?;
        let cycles = w.normalize(report.timing.total());
        first_cycles.get_or_insert(cycles);
        println!(
            "{:<22} {:>11.0} {:>11.0} {:>11.1} {:>13.0}",
            GtcTransforms::label(n),
            w.normalize(report.misses_at("L2").unwrap()),
            w.normalize(report.misses_at("L3").unwrap()),
            w.normalize(report.misses_at("TLB").unwrap()),
            cycles,
        );
        if n == 6 {
            println!(
                "\ntotal run-time reduction: {:.0}% (paper: 33%)",
                100.0 * (1.0 - cycles / first_cycles.unwrap())
            );
        }
    }
    Ok(())
}
