#!/usr/bin/env sh
# Full verification gate: release build, offline test suite, and
# warning-free clippy across the workspace.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets --no-deps -- -D warnings
