#!/usr/bin/env sh
# Full verification gate: release build, offline test suite, the
# fault-injection suites run explicitly, and warning-free clippy across
# the workspace.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Failure-path suites, named explicitly so a regression in the
# fault-tolerant pipeline fails loudly even if test discovery changes:
# decoder hardening (no corrupted buffer may panic try_replay), grain
# panic isolation / budgets, and the facade-level error taxonomy.
cargo test -q -p reuselens-trace --test fault_injection
cargo test -q -p reuselens-core --test degradation
cargo test -q --test fault_tolerance

cargo clippy --workspace --all-targets --no-deps -- -D warnings
