#!/usr/bin/env sh
# Full verification gate: release build, offline test suite, the
# fault-injection suites run explicitly, and warning-free clippy across
# the workspace.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Failure-path suites, named explicitly so a regression in the
# fault-tolerant pipeline fails loudly even if test discovery changes:
# decoder hardening (no corrupted buffer may panic try_replay), grain
# panic isolation / budgets, and the facade-level error taxonomy.
cargo test -q -p reuselens-trace --test fault_injection
cargo test -q -p reuselens-core --test degradation
cargo test -q --test fault_tolerance

# Differential/property suites, named explicitly for the same reason: the
# analyzer-vs-oracle property suite, the model-vs-simulator differential
# suite, the obs does-not-change-results identity suite (now also the
# timeline/GrainProfile/counter reconciliation), and the exporter
# golden snapshots.
cargo test -q -p reuselens-core --test property_oracle
cargo test -q -p reuselens-core --test partition_identity
cargo test -q -p reuselens-cache --test model_vs_sim
cargo test -q --test obs_identity
cargo test -q -p reuselens-obs --test exporter_golden

# Live telemetry service suite: /metrics byte-identity with the exporter,
# /healthz progress JSON, /timeline live snapshots, aggregator survival
# under concurrent recorder install/uninstall, typed JSONL event fields,
# and heartbeat emission.
cargo test -q -p reuselens-obs --test service_live

# Timeline + bench-harness suites: ring-buffer overflow/concurrency/
# mid-run install semantics, the byte-exact Chrome trace golden, and the
# bench report/JSON layer (including the regression trip-wire test).
cargo test -q -p reuselens-obs --test timeline_ring
cargo test -q -p reuselens-obs --test timeline_golden
cargo test -q -p reuselens-bench --lib

# Sampled-analysis accuracy contract: the statistical bands on the
# sampled engine's histograms and on the downstream miss predictions
# (both suites document and enforce the README's stated bands), plus the
# rate-1.0 / exact bit-identity proofs they contain. The bench-runner
# smoke below also exercises the sampled rung end to end.
cargo test -q -p reuselens-core --test sampling_accuracy
cargo test -q -p reuselens-cache --test sampled_miss_bounds

# Static-estimation accuracy contract: the zero-trace symbolic estimator's
# per-level miss predictions against the exact dynamic engine on Sweep3D,
# GTC, and the synthetic affine ladder (three sizes each), plus the
# zero-trace-events and indirect-fallback proofs. Enforces the bands
# quoted in README "Predicting without tracing" / DESIGN §4.13.
cargo test -q --test static_vs_dynamic

# Crash-safety suite: bit-identical checkpoint/resume, recovery from a
# snapshot torn at every byte boundary, typed rejection of corrupted
# files, and checkpoint-counter reconciliation against the files on disk.
cargo test -q -p reuselens-core --test checkpoint_resume

# Daemon + trace-store batteries (DESIGN §4.15), named explicitly:
# stored-trace replay bit-identity across workloads/grains/sampling/
# threads, every-truncation + every-bit-flip corruption detection over
# segment and index files, protocol fuzz (hostile request lines always
# answer typed, daemon never dies), and the multi-client concurrency
# stress with counter/JSONL/completion-record reconciliation.
cargo test -q --test store_identity
cargo test -q --test store_corruption
cargo test -q --test protocol_fuzz
cargo test -q --test daemon_stress

cargo clippy --workspace --all-targets --no-deps -- -D warnings

# Kill-and-resume CLI smoke: a checkpointed run whose newest snapshot is
# then torn mid-file must resume to a profile byte-identical to a plain
# run's. Exercises --checkpoint-dir/--checkpoint-every/--resume end to
# end, including fallback past the torn file.
CKPT_TMP="target/verify-ckpt"
rm -rf "$CKPT_TMP" && mkdir -p "$CKPT_TMP"
./target/release/reuselens kernel stream \
    --save-profile "$CKPT_TMP/plain.rlp" >/dev/null
./target/release/reuselens kernel stream \
    --checkpoint-dir "$CKPT_TMP/snaps" --checkpoint-every 10000 \
    --save-profile "$CKPT_TMP/ckpt.rlp" >/dev/null
newest=$(ls "$CKPT_TMP/snaps"/*.rlsnap | sort | tail -n 1)
head -c 13 "$newest" > "$newest.torn" && mv "$newest.torn" "$newest"
./target/release/reuselens kernel stream \
    --checkpoint-dir "$CKPT_TMP/snaps" --checkpoint-every 10000 --resume \
    --save-profile "$CKPT_TMP/resumed.rlp" >/dev/null
cmp "$CKPT_TMP/plain.rlp" "$CKPT_TMP/ckpt.rlp"
cmp "$CKPT_TMP/plain.rlp" "$CKPT_TMP/resumed.rlp"
rm -rf "$CKPT_TMP"

# Live-telemetry CLI smoke: a run with --serve-metrics must answer
# /metrics, /healthz, and /timeline over plain HTTP while (or just after)
# analyzing, then exit cleanly. The port is OS-assigned; the bound
# address is scraped from the stderr banner.
SRV_TMP="target/verify-serve"
rm -rf "$SRV_TMP" && mkdir -p "$SRV_TMP"
./target/release/reuselens sweep3d --mesh 48 \
    --serve-metrics 127.0.0.1:0 --heartbeat 0.5 \
    --log-jsonl "$SRV_TMP/events.jsonl" \
    --save-profile "$SRV_TMP/served.rlp" >/dev/null 2>"$SRV_TMP/stderr.log" &
SRV_PID=$!
addr=""
tries=0
while [ -z "$addr" ] && [ "$tries" -lt 100 ]; do
    addr=$(sed -n 's|^serving telemetry on http://\([^/]*\)/$|\1|p' \
        "$SRV_TMP/stderr.log")
    [ -n "$addr" ] || { tries=$((tries + 1)); sleep 0.1; }
done
[ -n "$addr" ] || { echo "verify: no telemetry banner" >&2; exit 1; }
curl -fsS "http://$addr/metrics" | grep -q '^reuselens_' \
    || { echo "verify: /metrics scrape failed" >&2; exit 1; }
curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' \
    || { echo "verify: /healthz scrape failed" >&2; exit 1; }
curl -fsS "http://$addr/timeline" >/dev/null \
    || { echo "verify: /timeline scrape failed" >&2; exit 1; }
wait "$SRV_PID"
grep -q '"event":"run_finished"' "$SRV_TMP/events.jsonl" \
    || { echo "verify: JSONL log missing run_finished" >&2; exit 1; }
rm -rf "$SRV_TMP"

# Daemon CLI smoke: start `reuselens serve` over stdin with one worker
# (serial semantics, so the replays see the capture), run a capture and
# two replays saving profiles to disk, and require the two saved profile
# files byte-identical — the stored trace round-trips deterministically.
# EOF on stdin is the clean-shutdown path.
DMN_TMP="target/verify-daemon"
rm -rf "$DMN_TMP" && mkdir -p "$DMN_TMP"
printf '%s\n' \
    '{"kind":"capture","id":"smoke","workload":"sweep3d","mesh":6,"grains":[64]}' \
    '{"kind":"replay","id":"smoke","grains":[64],"save":"target/verify-daemon/a.rlp"}' \
    '{"kind":"replay","id":"smoke","grains":[64],"save":"target/verify-daemon/b.rlp"}' \
    | ./target/release/reuselens serve --store "$DMN_TMP/store" \
        --stdin --workers 1 > "$DMN_TMP/responses.ndjson" 2>/dev/null
[ "$(grep -c '"ok":true' "$DMN_TMP/responses.ndjson")" = 3 ] \
    || { echo "verify: daemon smoke had a failing job" >&2; \
         cat "$DMN_TMP/responses.ndjson" >&2; exit 1; }
cmp "$DMN_TMP/a.rlp" "$DMN_TMP/b.rlp" \
    || { echo "verify: daemon replays disagree" >&2; exit 1; }
rm -rf "$DMN_TMP"

# Informational perf smoke: exercises the bench-runner end to end and
# refreshes a throwaway snapshot, but never gates on machine speed (no
# --baseline here; diff against a committed BENCH_reuselens.json by hand).
cargo run --release -q -p reuselens-bench --bin bench-runner -- \
    --smoke --out target/bench_smoke.json
